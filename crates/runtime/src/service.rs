//! The concurrent solver service: a fair-scheduled job queue feeding a pool
//! of worker threads, each running the Fig. 2 pipeline end to end — cache
//! lookup, portfolio routing, `run_pipeline`, telemetry — for every
//! submitted data-management problem.
//!
//! Concurrency model: plain `std::thread` workers draining a shared
//! `Mutex`-guarded `JobScheduler` under a condvar (no
//! external dependencies). The scheduler serves priority lanes with
//! deterministic pop-counted aging (no lane starves) and per-session
//! deficit-round-robin subqueues (no session monopolizes the pool). Every
//! job resolves through its own `CompletionSlot` (see [`crate::handle`]) rather
//! than a per-batch channel, which is what lets the [`crate::submit`] layer
//! hand out independent [`crate::handle::JobHandle`]s, cancel queued jobs,
//! and stream completions. Every job carries its own RNG seed, so results
//! are reproducible regardless of which worker picks the job up or in what
//! order anything executes.
//!
//! Ahead of the result cache sits the single-flight table
//! (`FlightTable`): concurrent submissions of the same work
//! identity coalesce onto one leader instead of both missing the cache and
//! both solving (the thundering-herd re-solve). Followers park on the
//! leader's completion and are served its result through the same
//! canonical-bit translation a cache hit uses; cancelling a follower never
//! cancels the leader, and a leader that panics wakes its followers to
//! retry rather than stranding them. A parked follower does occupy its
//! worker thread for the leader's remaining solve time — the deliberate
//! simple design (followers need their own post-translation decode and
//! slot resolution anyway); progress is always guaranteed because a leader
//! is by construction actively solving on another worker, and the parked
//! time is bounded by that one solve.

use crate::breaker::{BreakerConfig, CircuitBreakers};
use crate::cache::{
    CacheKey, CachedResult, FlightKey, FlightOutput, FlightResolution, FlightRole, FlightTable,
    ResultCache,
};
use crate::cluster::{Clock, MonotonicClock};
use crate::cost::{analytic_seconds, CostShape, MIN_PREDICTED_SECONDS};
use crate::fault::{FaultAction, FaultInjector, FaultSite, RetryPolicy};
use crate::handle::{Completion, CompletionSlot, JobHandle};
use crate::journal::{unfinished, Journal, JournalEvent, SolutionSnapshot, SubmittedRecord};
use crate::metrics::{BackendTelemetry, Metrics, RuntimeReport};
use crate::portfolio::{energy_quality, PortfolioScheduler};
use crate::registry::SolverRegistry;
use crate::scheduler::{JobScheduler, SchedulerPolicy};
use crate::submit::SessionCore;
use crate::sync::{CondvarExt, LockExt};
use crate::trace::{
    JobTrace, Span, Stage, StageProfile, StageStats, TraceConfig, TraceOutcome, TraceRing,
    TraceSink, DEFAULT_TRACE_CAPACITY,
};
use qdm_core::pipeline::{
    prepare_pipeline, run_prepared, JobPriority, PipelineOptions, PipelineReport, PreparedPipeline,
};
use qdm_core::problem::DmProblem;
use qdm_qubo::compiled::CompiledQubo;
use qdm_qubo::model::QuboModel;
use qdm_qubo::probe::{StageProbe, TeeProbe};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A shareable data-management problem: the trait object the service queues.
pub type SharedProblem = Arc<dyn DmProblem + Send + Sync>;

/// How a job picks its backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Let the adaptive portfolio scheduler route the job.
    #[default]
    Auto,
    /// Pin the job to a named backend (e.g. `"simulated-annealing"`).
    Named(String),
    /// Race the portfolio's top-`k` admissible backends against each other
    /// on scoped threads, every participant solving the job's **single
    /// shared compilation**. The winner is picked deterministically — best
    /// energy, ties to the higher-ranked participant, scanning in ranking
    /// order — so the result is bit-identical at any thread count and
    /// `Race { k: 1 }` reproduces `Auto`'s result exactly. Every
    /// participant's latency/quality and the race outcome feed the
    /// portfolio scheduler.
    Race {
        /// How many of the top-ranked eligible backends race (clamped to
        /// `1..=eligible`).
        k: usize,
    },
}

/// One unit of work for the service.
#[derive(Clone)]
pub struct JobSpec {
    /// The problem to encode and solve.
    pub problem: SharedProblem,
    /// Pipeline stages to apply around the solver call.
    pub options: PipelineOptions,
    /// Seed for the job's private RNG; fixes the full solve trajectory.
    pub seed: u64,
    /// Backend selection policy.
    pub backend: BackendChoice,
    /// Optional deadline, measured from enqueue. `None` — the default —
    /// never expires. See [`Self::deadline`].
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// An auto-routed job with default pipeline options.
    pub fn new(problem: SharedProblem, seed: u64) -> Self {
        Self {
            problem,
            options: PipelineOptions::default(),
            seed,
            backend: BackendChoice::Auto,
            deadline: None,
        }
    }

    /// Sets the pipeline options.
    pub fn with_options(mut self, options: PipelineOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the queue priority (scheduling only; the result is identical at
    /// every priority level and cache entries are shared across levels).
    pub fn with_priority(mut self, priority: JobPriority) -> Self {
        self.options.priority = priority;
        self
    }

    /// Pins the job to a named backend.
    pub fn on_backend(mut self, name: &str) -> Self {
        self.backend = BackendChoice::Named(name.to_string());
        self
    }

    /// Races the portfolio's top-`k` admissible backends on the job's
    /// shared compilation (see [`BackendChoice::Race`]).
    pub fn racing(mut self, k: usize) -> Self {
        self.backend = BackendChoice::Race { k };
        self
    }

    /// Bounds how long the job may take, measured from enqueue. An expired
    /// job fails with [`JobError::DeadlineExceeded`]: either fail-fast at
    /// worker pickup (it expired while queued) or cooperatively — a
    /// [`qdm_qubo::probe::StageProbe::should_stop`] checkpoint polled at
    /// the solvers' restart/sweep boundaries stops the solve early, and the
    /// best solution found so far is carried out as
    /// [`PartialSolution`]. The deadline is scheduling-only state: it is
    /// excluded from cache and single-flight identity, and jobs without one
    /// run bit-identical to a runtime without deadline support.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Submission-order id within the service (monotonically increasing).
    pub job_id: u64,
    /// Full pipeline telemetry and decoded solution.
    pub report: PipelineReport,
    /// The backend that produced (or originally produced, for cache hits
    /// and coalesced jobs) the result.
    pub backend: String,
    /// Whether the result was served from the result cache.
    pub from_cache: bool,
    /// Whether the result was served by coalescing onto a concurrent
    /// in-flight duplicate (single-flight) instead of solving or hitting
    /// the cache.
    pub coalesced: bool,
}

/// The best solution a deadline-expired job had found when it was stopped,
/// carried in [`JobError::DeadlineExceeded`]. Bits are in the job's own
/// variable labeling; the energy is exact for those bits — "partial" means
/// the *search* was cut short, not that the assignment is incomplete.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSolution {
    /// Best assignment found before the deadline checkpoint stopped the
    /// solve.
    pub bits: Vec<bool>,
    /// Energy of `bits` under the job's QUBO.
    pub energy: f64,
}

/// Why a job could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The requested backend name is not registered.
    UnknownBackend(String),
    /// The pinned backend cannot take a model this large.
    BackendTooSmall {
        /// Requested backend.
        backend: String,
        /// The backend's capacity.
        max_vars: usize,
        /// The model's variable count.
        n_vars: usize,
    },
    /// No registered backend admits a model this large.
    NoEligibleBackend {
        /// The model's variable count.
        n_vars: usize,
    },
    /// The job was cancelled through its [`crate::handle::JobHandle`]: either
    /// removed from the queue before a worker picked it up, or cancelled
    /// mid-run (the solve completed and was cached, but waiters see this).
    Cancelled,
    /// The job panicked inside encoding, solving, or decoding. The worker
    /// survives; the panic payload (if it was a string) is carried here.
    Panicked(String),
    /// A [`crate::fault::FaultInjector`] forced a typed failure
    /// ([`crate::fault::FaultAction::Error`]) at one of the processing
    /// seams. Retryable, like [`Self::Panicked`].
    Injected(String),
    /// The job's [`JobSpec::deadline`] expired: while queued (`partial` is
    /// `None` — nothing ran) or mid-solve (`partial` carries the best
    /// solution found before the cooperative checkpoint stopped the
    /// search).
    DeadlineExceeded {
        /// Best-so-far solution at the moment the solve was stopped.
        partial: Option<PartialSolution>,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::UnknownBackend(name) => write!(f, "unknown backend {name:?}"),
            JobError::BackendTooSmall { backend, max_vars, n_vars } => {
                write!(f, "backend {backend:?} caps at {max_vars} vars but the model has {n_vars}")
            }
            JobError::NoEligibleBackend { n_vars } => {
                write!(f, "no registered backend admits {n_vars} variables")
            }
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Injected(msg) => write!(f, "injected fault: {msg}"),
            JobError::DeadlineExceeded { partial: Some(p) } => {
                write!(f, "deadline exceeded (best-so-far energy {})", p.energy)
            }
            JobError::DeadlineExceeded { partial: None } => {
                write!(f, "deadline exceeded while queued")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Result of one job: completed or failed routing.
pub type JobOutcome = Result<JobResult, JobError>;

/// Routing work the cluster front-end precomputed at submit time —
/// compile-free: the QUBO is built once, canonically fingerprinted via
/// [`qdm_qubo::model::QuboModel::canonical_form`], and carried to whichever
/// shard (and worker) ends up running the job, so migration never changes
/// what executes.
pub(crate) struct RouteInfo {
    /// The encoded model, built once at routing time; the worker reuses it
    /// instead of calling `to_qubo` again.
    pub(crate) qubo: Arc<QuboModel>,
    /// Canonical (labeling-independent) fingerprint of `qubo`.
    pub(crate) canonical_fp: u64,
    /// This labeling's canonical permutation (`perm[original] = canonical`).
    pub(crate) perm: Arc<Vec<usize>>,
}

/// A job sitting in the service queue, waiting for a worker.
pub(crate) struct QueuedJob {
    pub(crate) id: u64,
    /// Deficit-round-robin cost: the problem's variable count (≥ 1), spent
    /// from the owning session's per-lane scheduling credit when served.
    pub(crate) cost: u64,
    /// Enqueue timestamp, nanoseconds since the service epoch: the start of
    /// the job's `queued` trace span and of its caller-observed serve
    /// latency.
    pub(crate) queued_ns: u64,
    pub(crate) spec: JobSpec,
    pub(crate) slot: Arc<CompletionSlot>,
    pub(crate) session: Arc<SessionCore>,
    /// Cluster-precomputed route; `None` for directly submitted jobs.
    pub(crate) route: Option<RouteInfo>,
    /// Mid-retry state carried across a backoff park (see [`RetryState`]);
    /// `None` for a job that has not been parked.
    pub(crate) retry: Option<Box<RetryState>>,
    /// `true` for jobs re-enqueued by [`SolverService::recover`]: they keep
    /// their journaled id, skip re-journaling their own `Submitted` record,
    /// and open their trace with a [`Stage::Recover`] span.
    pub(crate) recovered: bool,
}

/// Everything a parked retry needs to resume exactly where it left off.
///
/// When a retryable failure earns a non-zero backoff, the worker does not
/// sleep through it: the job is parked in [`Shared::delayed`] with this
/// state boxed onto it and the worker moves on to other queued work. The
/// worker that picks the job back up (once its `not_before` passes on the
/// service clock) restores the attempt counter, the accumulated
/// [`AttemptCtx`] — including the backend-exclusion memory and the
/// satellite compile caches — and the partially built trace, then re-enters
/// the retry loop as if it had slept in place.
pub(crate) struct RetryState {
    /// The attempt number the resumed run is about to execute (1-based).
    attempt: u32,
    /// Cross-attempt context: exclusions, attribution, compile reuse.
    ctx: AttemptCtx,
    /// The trace built so far; the resume pushes the `Retry` span covering
    /// the park.
    trace: Option<JobTrace>,
    /// When the backoff began (trace timebase), for the `Retry` span.
    backoff_start_ns: u64,
}

/// A job parked until its retry backoff elapses on the service clock.
pub(crate) struct DelayedJob {
    /// Earliest pickup time, in [`Clock::now_micros`] units.
    not_before_micros: u64,
    job: QueuedJob,
}

/// Service internals shared between the owner, sessions, handles, and
/// workers.
pub(crate) struct Shared {
    pub(crate) registry: SolverRegistry,
    pub(crate) cache: ResultCache,
    pub(crate) inflight: FlightTable,
    pub(crate) portfolio: PortfolioScheduler,
    pub(crate) metrics: Metrics,
    pub(crate) queue: Mutex<JobScheduler>,
    pub(crate) job_ready: Condvar,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) next_job_id: AtomicU64,
    pub(crate) next_session_id: AtomicU64,
    /// The service's private monotonic epoch; every trace timestamp is
    /// nanoseconds since this instant.
    pub(crate) epoch: Instant,
    /// Where finished job traces go; `None` disables tracing entirely.
    pub(crate) sink: Option<Arc<dyn TraceSink>>,
    /// The in-service ring behind [`TraceConfig::Ring`] — kept alongside
    /// `sink` so snapshots/exports can read it back; `None` for disabled or
    /// custom-sink configurations.
    pub(crate) ring: Option<Arc<TraceRing>>,
    /// This service's shard id inside a [`crate::cluster::ClusterService`];
    /// `None` for a standalone service. Tags traces and reports.
    pub(crate) shard: Option<u64>,
    /// Fault-injection hook consulted at each processing seam; `None` (the
    /// production default) skips even the virtual call.
    pub(crate) injector: Option<Arc<dyn FaultInjector>>,
    /// Bounds the worker retry loop for retryable failures.
    pub(crate) retry: RetryPolicy,
    /// Per-backend circuit breakers; `None` disables breaking entirely.
    pub(crate) breakers: Option<CircuitBreakers>,
    /// Time source for retry backoff and injected delays. The default
    /// monotonic clock gives production behavior; tests inject a
    /// [`crate::cluster::ManualClock`] so no robustness test ever sleeps
    /// wall-clock time waiting for a backoff.
    pub(crate) clock: Arc<dyn Clock>,
    /// Durable job journal recording `Submitted`/`Completed`/`Cancelled`
    /// at the submit and resolve seams; `None` — the production default
    /// without durability — skips journaling entirely.
    pub(crate) journal: Option<Arc<dyn Journal>>,
    /// Jobs parked mid-retry until their backoff elapses on `clock`; kept
    /// off the scheduler queue so they cost no scheduling credit and the
    /// workers stay free for runnable work.
    pub(crate) delayed: Mutex<Vec<DelayedJob>>,
}

impl Shared {
    /// Nanoseconds since the service epoch (monotonic).
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Predicted seconds of backend time `spec` will consume, quoted by
    /// the calibrated cost model *before* the job is queued (so before
    /// compilation — the estimate uses the default degree assumption of
    /// [`CostShape::from_n_vars`]). This is the common currency the
    /// decision plane meters: the DRR scheduler charges it as the job's
    /// cost, the cluster's admission buckets drain by it, and queue
    /// backlogs sum it.
    ///
    /// Pinned jobs quote their named backend; `Auto` quotes the cheapest
    /// eligible backend (what routing will pick, modulo the quality
    /// term); a `Race { k }` quotes the **sum** of its k cheapest
    /// participants — a race consumes every lane it occupies, not just
    /// the winner's. Unroutable specs quote the floor and are rejected at
    /// routing instead.
    pub(crate) fn predicted_seconds(&self, spec: &JobSpec) -> f64 {
        let n_vars = spec.problem.n_vars();
        let shape = CostShape::from_n_vars(n_vars);
        let expected = |idx: usize| {
            let capacity = self.breakers.as_ref().map_or(1.0, |b| b.capacity(idx));
            self.portfolio.expected_seconds(&self.registry, idx, shape, capacity)
        };
        match &spec.backend {
            BackendChoice::Named(name) => match self.registry.find(name) {
                Some(idx) => expected(idx),
                None => MIN_PREDICTED_SECONDS,
            },
            BackendChoice::Auto => self
                .registry
                .eligible(n_vars)
                .into_iter()
                .map(expected)
                .min_by(f64::total_cmp)
                .unwrap_or(MIN_PREDICTED_SECONDS),
            BackendChoice::Race { k } => {
                let mut costs: Vec<f64> =
                    self.registry.eligible(n_vars).into_iter().map(expected).collect();
                if costs.is_empty() {
                    return MIN_PREDICTED_SECONDS;
                }
                costs.sort_by(f64::total_cmp);
                costs.iter().take((*k).clamp(1, costs.len())).sum()
            }
        }
    }
}

/// Service configuration.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Queueing discipline (default: [`SchedulerPolicy::FairShare`] —
    /// priority lanes with deterministic aging plus per-session
    /// deficit-round-robin; see [`crate::scheduler`]).
    pub scheduling: SchedulerPolicy,
    /// Job tracing (default: a bounded in-service ring of
    /// [`DEFAULT_TRACE_CAPACITY`] traces; see [`crate::trace`]).
    pub tracing: TraceConfig,
    /// Shard id this service runs as inside a
    /// [`crate::cluster::ClusterService`] (tags traces, reports, and
    /// Prometheus series); `None` — the default — for a standalone service.
    pub shard: Option<u64>,
    /// Trace/latency epoch override. A cluster passes one shared epoch to
    /// every shard so queue-wait timestamps stay valid when a job migrates
    /// between shards; `None` — the default — uses the service's own start
    /// instant.
    pub epoch: Option<Instant>,
    /// Fault-injection hook consulted at the [`crate::fault::FaultSite`]
    /// seams of every job; `None` — the default — injects nothing. Tests
    /// arm a [`crate::fault::FaultPlan`] here.
    pub injector: Option<Arc<dyn FaultInjector>>,
    /// Retry policy for retryable failures (panics and injected errors).
    /// The default disables retry, preserving single-attempt behavior.
    pub retry: RetryPolicy,
    /// Per-backend circuit-breaker policy; `None` — the default — disables
    /// breakers.
    pub breaker: Option<BreakerConfig>,
    /// Time source for retry backoff and injected delays; `None` — the
    /// default — uses a monotonic wall clock. Tests inject a
    /// [`crate::cluster::ManualClock`] to drive backoffs without sleeping.
    pub clock: Option<Arc<dyn Clock>>,
    /// Durable job journal. When set, every accepted job appends a
    /// `Submitted` record at enqueue and a `Completed`/`Cancelled` record
    /// when its slot resolves; jobs with no terminal record are replayed by
    /// [`SolverService::recover`]. `None` — the default — disables
    /// journaling.
    pub journal: Option<Arc<dyn Journal>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self {
            workers,
            cache_capacity: 4096,
            scheduling: SchedulerPolicy::default(),
            tracing: TraceConfig::default(),
            shard: None,
            epoch: None,
            injector: None,
            retry: RetryPolicy::default(),
            breaker: None,
            clock: None,
            journal: None,
        }
    }
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("cache_capacity", &self.cache_capacity)
            .field("scheduling", &self.scheduling)
            .field("tracing", &self.tracing)
            .field("shard", &self.shard)
            .field("epoch", &self.epoch)
            .field("injector", &self.injector.as_ref().map(|_| "<injector>"))
            .field("retry", &self.retry)
            .field("breaker", &self.breaker)
            .field("clock", &self.clock.as_ref().map(|_| "<clock>"))
            .field("journal", &self.journal.as_ref().map(|_| "<journal>"))
            .finish()
    }
}

/// The concurrent solver service.
///
/// The synchronous entry points below ([`Self::run_batch`], [`Self::run`])
/// are thin wrappers over the handle-based asynchronous API — see
/// [`SolverService::session`] for submission with backpressure, per-job
/// [`crate::handle::JobHandle`]s, cancellation, and streaming completions.
///
/// ```
/// use qdm_runtime::prelude::*;
/// use qdm_core::prelude::*;
/// use qdm_qubo::penalty;
/// use qdm_qubo::model::QuboModel;
/// use std::sync::Arc;
///
/// // Any DmProblem works; a 3-way pick-one as a stand-in.
/// struct PickOne;
/// impl DmProblem for PickOne {
///     fn name(&self) -> String { "pick-one".into() }
///     fn n_vars(&self) -> usize { 3 }
///     fn to_qubo(&self) -> QuboModel {
///         let mut q = QuboModel::new(3);
///         q.add_linear(0, 3.0).add_linear(1, 1.0).add_linear(2, 2.0);
///         penalty::exactly_one(&mut q, &[0, 1, 2], 10.0);
///         q
///     }
///     fn decode(&self, bits: &[bool]) -> Decoded {
///         let n = bits.iter().filter(|&&b| b).count();
///         Decoded { feasible: n == 1, objective: 0.0, summary: format!("{bits:?}") }
///     }
/// }
///
/// let service =
///     SolverService::new(ServiceConfig { workers: 2, cache_capacity: 64, ..Default::default() });
/// let job = JobSpec::new(Arc::new(PickOne), 7);
///
/// // Asynchronous path: submit, keep working, then wait the handle.
/// let session = service.session(SessionConfig::default());
/// let handle = session.submit(job.clone());
/// let first = handle.wait().unwrap();
/// assert!(first.report.decoded.feasible);
///
/// // Synchronous wrapper: same work resubmitted is a bit-identical cache hit.
/// let again = service.run(job).unwrap();
/// assert!(again.from_cache);
/// assert_eq!(again.report.bits, first.report.bits);
/// assert_eq!(service.report().cache_hits, 1);
/// ```
pub struct SolverService {
    pub(crate) shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SolverService {
    /// Starts a service over the standard Fig. 2 backend portfolio.
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_registry(SolverRegistry::standard(), config)
    }

    /// Starts a service over a custom registry.
    pub fn with_registry(registry: SolverRegistry, config: ServiceConfig) -> Self {
        let n_backends = registry.len();
        let (sink, ring): (Option<Arc<dyn TraceSink>>, Option<Arc<TraceRing>>) =
            match config.tracing {
                TraceConfig::Disabled => (None, None),
                TraceConfig::Ring => {
                    let ring = Arc::new(TraceRing::new(DEFAULT_TRACE_CAPACITY));
                    (Some(Arc::clone(&ring) as Arc<dyn TraceSink>), Some(ring))
                }
                TraceConfig::RingWithCapacity(capacity) => {
                    let ring = Arc::new(TraceRing::new(capacity));
                    (Some(Arc::clone(&ring) as Arc<dyn TraceSink>), Some(ring))
                }
                TraceConfig::Custom(sink) => (Some(sink), None),
            };
        let shared = Arc::new(Shared {
            registry,
            cache: ResultCache::new(config.cache_capacity),
            inflight: FlightTable::new(),
            portfolio: PortfolioScheduler::new(n_backends),
            metrics: Metrics::new(),
            queue: Mutex::new(JobScheduler::new(config.scheduling)),
            job_ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            next_job_id: AtomicU64::new(0),
            next_session_id: AtomicU64::new(0),
            epoch: config.epoch.unwrap_or_else(Instant::now),
            sink,
            ring,
            shard: config.shard,
            injector: config.injector,
            retry: config.retry,
            breakers: config.breaker.as_ref().map(|b| CircuitBreakers::new(b, n_backends)),
            clock: config.clock.unwrap_or_else(|| Arc::new(MonotonicClock::new())),
            journal: config.journal,
            delayed: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qdm-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Submits a batch and blocks until every job is answered, returning
    /// outcomes in submission order. A compatibility wrapper over the
    /// session API: one session sized to the batch, every spec submitted,
    /// every handle waited in order.
    pub fn run_batch(&self, specs: Vec<JobSpec>) -> Vec<JobOutcome> {
        crate::submit::run_batch_via_session(self, specs)
    }

    /// Submits one job and blocks for its outcome.
    pub fn run(&self, spec: JobSpec) -> JobOutcome {
        self.run_batch(vec![spec]).pop().expect("one outcome for one job")
    }

    /// Snapshot of runtime counters, cache behavior, and backend usage,
    /// including the portfolio's per-backend EWMA latency/quality telemetry
    /// (name-sorted, observed backends only), the cost model's
    /// predicted-seconds and estimation-error gauges, the predicted-seconds
    /// queue backlog, and trace-ring counters.
    pub fn report(&self) -> RuntimeReport {
        let mut report = self.shared.metrics.report();
        let calibration = self.shared.portfolio.cost_model().stats();
        let mut telemetry: Vec<BackendTelemetry> = self
            .shared
            .portfolio
            .stats()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.observations > 0)
            .map(|(idx, s)| BackendTelemetry {
                backend: self.shared.registry.get(idx).spec.name.clone(),
                observations: s.observations,
                ewma_latency_seconds: s.ewma_latency,
                ewma_quality: s.ewma_quality,
                race_entries: s.race_entries,
                race_wins: s.race_wins,
                predicted_seconds: calibration[idx].ewma_predicted_seconds,
                estimation_error_factor: calibration[idx].ewma_error_factor,
            })
            .collect();
        telemetry.sort_by(|a, b| a.backend.cmp(&b.backend));
        report.backend_telemetry = telemetry;
        report.queue_backlog_seconds =
            self.shared.queue.lock_unpoisoned().backlog_micros() as f64 / 1e6;
        if let Some(ring) = &self.shared.ring {
            report.traces_recorded = ring.recorded();
            report.traces_dropped = ring.dropped();
        }
        report.shard = self.shared.shard;
        report
    }

    /// Snapshot of the retained job traces in completion order. Empty when
    /// tracing is disabled or routed to a custom sink.
    pub fn traces(&self) -> Vec<JobTrace> {
        self.shared.ring.as_ref().map(|ring| ring.snapshot()).unwrap_or_default()
    }

    /// Traces lost to ring wraparound or slot contention.
    pub fn trace_drops(&self) -> u64 {
        self.shared.ring.as_ref().map(|ring| ring.dropped()).unwrap_or(0)
    }

    /// Exports the retained job traces as Chrome `trace_event` JSON — load
    /// the string (saved as a `.json` file) in `about:tracing` or
    /// [Perfetto](https://ui.perfetto.dev) to see per-job span timelines:
    /// queue wait, the single compile, presolve, every race participant's
    /// solve (winner marked), and serve. Each job renders as its own thread
    /// lane (`tid = job_id·100`); race participants nest under it.
    pub fn export_traces(&self) -> String {
        render_chrome_trace(&self.traces())
    }

    /// The backend registry the service dispatches over.
    pub fn registry(&self) -> &SolverRegistry {
        &self.shared.registry
    }

    /// Live result-cache size (entries, summed over shards).
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Replays every unfinished job recorded in `journal` — submitted but
    /// neither completed nor cancelled, i.e. lost to a crash — through the
    /// normal pipeline, returning one [`JobHandle`] per replayed job in the
    /// original submission order.
    ///
    /// Replayed jobs keep their journaled ids (the service's id counter is
    /// bumped past them), reuse their journaled seed, options, and backend
    /// choice, and run the exact QUBO the journal captured, so with the
    /// crash's fault condition gone the replay is bit-identical to what the
    /// lost run would have produced. They do not re-append `Submitted`
    /// records; their eventual `Completed`/`Cancelled` records converge the
    /// journal, making recovery idempotent — a second recovery from the
    /// same journal after the replays finish finds nothing to do.
    ///
    /// The replayed problems are [`crate::journal::JournaledProblem`]s
    /// rebuilt from the captured QUBO: solver-visible behavior (encoding,
    /// energies, bits) is exact, while `decode` reports a generic
    /// journal-replay summary. Callers who need the original domain decode
    /// can resupply their problem objects via [`Self::recover_with`].
    pub fn recover(&self, journal: &dyn Journal) -> Vec<JobHandle> {
        self.recover_with(journal, |_| None)
    }

    /// [`Self::recover`], with a resolver that can map a journaled record
    /// back to the caller's own [`DmProblem`] (returning `None` falls back
    /// to the journal's captured QUBO). Use this to restore full decode
    /// fidelity when the problem objects are reconstructible after restart.
    pub fn recover_with(
        &self,
        journal: &dyn Journal,
        mut resolver: impl FnMut(&SubmittedRecord) -> Option<SharedProblem>,
    ) -> Vec<JobHandle> {
        let open = unfinished(&journal.events());
        if open.is_empty() {
            return Vec::new();
        }
        // Recovered jobs run under a private session sized to the backlog;
        // the handles hold the session core alive, so the caller can wait
        // them (or ignore them) like any other submission.
        let session_id = self.shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(SessionCore::new(session_id, open.len(), open.len()));
        let mut handles = Vec::with_capacity(open.len());
        for record in open {
            // Keep the id space monotone past every journaled id so new
            // submissions never collide with a replayed one.
            self.shared.next_job_id.fetch_max(record.job_id.saturating_add(1), Ordering::Relaxed);
            let problem = resolver(&record).unwrap_or_else(|| record.fallback_problem());
            let spec = record.to_spec(problem);
            assert!(core.try_reserve(), "recovery session is sized to the backlog");
            self.shared.metrics.on_recovered();
            handles.push(crate::submit::enqueue_reserved(
                &self.shared,
                &core,
                record.job_id,
                spec,
                None,
                record.tenant.as_deref(),
                true,
            ));
        }
        handles
    }

    /// Exports the live result cache as a [`SolutionSnapshot`] (and counts
    /// the exported entries in `snapshot_saved_entries_total`). Persist it
    /// with [`SolutionSnapshot::write_to`]; a restarted service that loads
    /// it serves previously solved work from the cache without recompiling.
    pub fn save_snapshot(&self) -> SolutionSnapshot {
        let entries = self.shared.cache.entries();
        self.shared.metrics.on_snapshot_saved(entries.len() as u64);
        SolutionSnapshot { entries }
    }

    /// Seeds the result cache from a snapshot taken by
    /// [`Self::save_snapshot`] (typically before any traffic, right after
    /// restart). Resubmissions of snapshotted work are served as ordinary
    /// cache hits — bit-identical, with no compile and no solve.
    pub fn load_snapshot(&self, snapshot: &SolutionSnapshot) {
        for (key, value) in &snapshot.entries {
            self.shared.cache.insert(key.clone(), value.clone());
        }
        self.shared.metrics.on_snapshot_loaded(snapshot.entries.len() as u64);
    }

    /// Tears the service down the way a crash would: every queued or parked
    /// job is discarded *without resolving its completion slot* — exactly
    /// what happens to in-memory state when a process dies — while workers
    /// finish only the job they already claimed. Outstanding handles never
    /// resolve (as after a real crash); a journal configured on the service
    /// still holds the lost jobs' `Submitted` records, which is what
    /// [`Self::recover`] replays on the replacement service. Test-support
    /// API for crash-recovery drills; production teardown is `drop`, which
    /// drains gracefully.
    pub fn simulate_crash(self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        {
            let mut queue = self.shared.queue.lock_unpoisoned();
            while queue.pop().is_some() {}
        }
        self.shared.delayed.lock_unpoisoned().clear();
        self.shared.job_ready.notify_all();
        // `drop(self)` joins the workers.
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.job_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = next_job(shared) {
        run_job(shared, job);
    }
}

/// Claims the next runnable job. A parked retry whose backoff has elapsed
/// on the service clock takes precedence (it was dequeued long ago and owes
/// the caller a resolution), then the scheduler queue. Blocks under the
/// condvar when both are empty; while not-yet-due parked jobs exist the
/// wait is sliced so their due times are re-checked without busy-spinning.
/// Returns `None` at shutdown — after handing out any still-parked jobs,
/// backoff forfeited, so graceful teardown resolves them instead of
/// stranding their handles.
fn next_job(shared: &Shared) -> Option<QueuedJob> {
    loop {
        let now_micros = shared.clock.now_micros();
        {
            let mut delayed = shared.delayed.lock_unpoisoned();
            if let Some(pos) = delayed.iter().position(|d| d.not_before_micros <= now_micros) {
                return Some(delayed.remove(pos).job);
            }
        }
        let mut queue = shared.queue.lock_unpoisoned();
        loop {
            if let Some(job) = queue.pop() {
                return Some(job);
            }
            if shared.shutting_down.load(Ordering::SeqCst) {
                drop(queue);
                return shared.delayed.lock_unpoisoned().pop().map(|d| d.job);
            }
            if shared.delayed.lock_unpoisoned().is_empty() {
                queue = shared.job_ready.wait_unpoisoned(queue);
            } else {
                // A parked job may come due before anything is enqueued;
                // wake on a bounded slice and re-check its clock.
                let (guard, _) = shared
                    .job_ready
                    .wait_timeout(queue, Duration::from_millis(1))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(guard);
                break;
            }
        }
    }
}

/// Runs one claimed job to resolution — or parks it back into
/// [`Shared::delayed`] when a retryable failure earns a non-zero backoff.
fn run_job(shared: &Shared, mut job: QueuedJob) {
    let resumed = job.retry.take();
    if resumed.is_none() {
        // The job left the queue: free its session's backpressure slot so
        // blocked submitters make progress while this worker solves. (A
        // resumed park already freed it at its first pickup.)
        shared.metrics.on_dequeue();
        job.session.on_dequeue();
    }
    // The trace is assembled worker-locally — the shared sink is only
    // touched once, at the end — so tracing costs the solve path
    // nothing but a few clock reads. A resumed park restores the trace,
    // attempt counter, and cross-attempt context it was parked with.
    let (mut trace, mut ctx, mut attempt) = match resumed {
        Some(state) => {
            let RetryState { attempt, ctx, mut trace, backoff_start_ns } = *state;
            if let Some(t) = trace.as_mut() {
                t.spans.push(Span {
                    stage: Stage::Retry,
                    backend: None,
                    winner: false,
                    start_ns: backoff_start_ns,
                    end_ns: shared.now_ns(),
                    stats: StageStats::default(),
                    predicted_seconds: None,
                });
            }
            (trace, ctx, attempt)
        }
        None => {
            let mut trace = shared.sink.as_ref().map(|_| JobTrace {
                job_id: job.id,
                session: job.session.id(),
                problem: job.spec.problem.name(),
                lane: job.spec.options.priority,
                fingerprint: 0,
                seed: job.spec.seed,
                outcome: TraceOutcome::Failed,
                backend: None,
                shard: shared.shard,
                spans: vec![Span {
                    stage: Stage::Queued,
                    backend: None,
                    winner: false,
                    start_ns: job.queued_ns,
                    end_ns: shared.now_ns(),
                    stats: StageStats::default(),
                    predicted_seconds: None,
                }],
            });
            if job.recovered {
                if let Some(t) = trace.as_mut() {
                    t.spans.push(Span {
                        stage: Stage::Recover,
                        backend: None,
                        winner: false,
                        start_ns: job.queued_ns,
                        end_ns: job.queued_ns,
                        stats: StageStats::default(),
                        predicted_seconds: None,
                    });
                }
            }
            let ctx = AttemptCtx {
                deadline_at_ns: job.spec.deadline.map(|d| {
                    job.queued_ns.saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64)
                }),
                ..AttemptCtx::default()
            };
            (trace, ctx, 0u32)
        }
    };
    // The retry loop around job processing. A panicking job
    // (user-supplied to_qubo/decode/repair, a solver bug, or an injected
    // fault) must neither kill the worker nor leave a handle waiting on
    // a slot that never resolves; retryable failures (panics, injected
    // errors) are retried up to the policy's budget with deterministic
    // backoff, each new attempt excluding the backends that failed the
    // previous ones.
    let outcome = loop {
        // Fail-fast: a job whose deadline expired while queued (or
        // while backing off between attempts) never starts an attempt.
        if let Some(deadline_at_ns) = ctx.deadline_at_ns {
            if shared.now_ns() >= deadline_at_ns {
                break Err(JobError::DeadlineExceeded { partial: None });
            }
        }
        ctx.attempted.clear();
        ctx.accounted = false;
        let attempt_outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(shared, &job.spec, job.route.as_ref(), &mut trace, &mut ctx)
        }))
        .unwrap_or_else(|payload| Err(JobError::Panicked(panic_message(payload.as_ref()))));
        let err = match attempt_outcome {
            Ok(result) => break Ok(result),
            Err(err) => err,
        };
        let retryable = matches!(err, JobError::Panicked(_) | JobError::Injected(_));
        if retryable {
            // Breaker attribution for the panic path: `lead` accounts
            // participant-level successes/failures itself and marks the
            // context accounted; an unwound attempt never got there, so
            // every backend it dispatched is charged here.
            if !ctx.accounted {
                for &idx in &ctx.attempted {
                    if let Some(breakers) = &shared.breakers {
                        breakers.on_failure(idx, &shared.metrics);
                    }
                    // The cost model prices unreliability the same way:
                    // every backend the unwound attempt dispatched gets a
                    // failure against its success rate.
                    shared.portfolio.record_failure(idx);
                }
            }
            // The next attempt routes around everything this one tried.
            let attempted = std::mem::take(&mut ctx.attempted);
            ctx.excluded.extend(attempted);
        }
        if retryable && attempt < shared.retry.max_retries {
            attempt += 1;
            shared.metrics.on_retried();
            let backoff_start_ns = if trace.is_some() { shared.now_ns() } else { 0 };
            let backoff = shared.retry.backoff(job.spec.seed, attempt);
            if backoff.is_zero() {
                // Instant retry stays in-loop on this worker.
                if let Some(t) = trace.as_mut() {
                    t.spans.push(Span {
                        stage: Stage::Retry,
                        backend: None,
                        winner: false,
                        start_ns: backoff_start_ns,
                        end_ns: shared.now_ns(),
                        stats: StageStats::default(),
                        predicted_seconds: None,
                    });
                }
                continue;
            }
            // A real backoff parks the job instead of sleeping through
            // it: the job rejoins the workers once the backoff elapses
            // on the service clock, and this worker is immediately free
            // for other queued work. The Retry span is pushed at
            // resume, covering the whole park.
            let not_before_micros = shared
                .clock
                .now_micros()
                .saturating_add(backoff.as_micros().min(u128::from(u64::MAX)) as u64);
            job.retry = Some(Box::new(RetryState { attempt, ctx, trace, backoff_start_ns }));
            shared.delayed.lock_unpoisoned().push(DelayedJob { not_before_micros, job });
            // Move indefinitely-blocked waiters into the sliced wait
            // that re-checks parked due times.
            shared.job_ready.notify_all();
            return;
        }
        if retryable && shared.retry.max_retries > 0 {
            shared.metrics.on_retries_exhausted();
        }
        break Err(err);
    }
    .map(|mut result| {
        result.job_id = job.id;
        result
    });
    // Terminal failure accounting. Routing errors were counted where
    // they were decided (they are deterministic and get published to
    // followers); retryable failures and deadline expiries are only
    // terminal here, after the retry loop gave up.
    match &outcome {
        Err(JobError::Panicked(_)) | Err(JobError::Injected(_)) => shared.metrics.on_failed(),
        Err(JobError::DeadlineExceeded { .. }) => {
            shared.metrics.on_deadline_exceeded();
            shared.metrics.on_failed();
        }
        _ => {}
    }
    if outcome.is_ok() {
        // What the caller waited end to end — enqueue to delivery —
        // regardless of whether the job solved, hit the cache, or
        // coalesced. The solve histogram only sees backend time, so
        // without this series cache hits would be invisible to p99.
        let waited = shared.now_ns().saturating_sub(job.queued_ns);
        shared.metrics.on_served(waited as f64 / 1e9);
    }
    // Telemetry is recorded *before* the slot resolves: `wait()` returns
    // the instant the slot does, and a caller snapshotting metrics or
    // traces right after must see this job. The one consequence: a
    // cancel that races a finished run is traced by what the runtime
    // did (solved), while the slot still delivers `Cancelled`.
    if let (Some(sink), Some(mut trace)) = (shared.sink.as_ref(), trace) {
        trace.outcome = match &outcome {
            Ok(result) if result.from_cache => TraceOutcome::CacheHit,
            Ok(result) if result.coalesced => TraceOutcome::Coalesced,
            Ok(_) => TraceOutcome::Solved,
            Err(JobError::Cancelled) => TraceOutcome::Cancelled,
            Err(_) => TraceOutcome::Failed,
        };
        if let Ok(result) = &outcome {
            trace.backend = Some(result.backend.clone());
        }
        sink.record(trace);
    }
    // Resolve the handle's slot (so `wait()` never lags the stream; the
    // slot also reconciles the completed/cancelled ledger if the cancel
    // raced the run), then feed the session's completion stream the
    // exact outcome the slot delivered.
    let delivered = job.slot.resolve(outcome, &shared.metrics);
    // Journal the terminal record *after* the slot resolved, matching
    // what the caller observed: a delivered result is `Completed`, a
    // delivered cancellation is `Cancelled`, and a terminal failure
    // writes nothing — the job stays unfinished in the journal, which
    // is exactly what makes [`SolverService::recover`] replay it.
    if let Some(journal) = &shared.journal {
        match &delivered {
            Ok(_) => {
                let fingerprint = ctx
                    .canonical
                    .as_ref()
                    .map(|(fp, _)| *fp)
                    .or_else(|| job.route.as_ref().map(|r| r.canonical_fp))
                    .unwrap_or(0);
                journal.append(JournalEvent::Completed { job_id: job.id, fingerprint });
            }
            Err(JobError::Cancelled) => {
                journal.append(JournalEvent::Cancelled { job_id: job.id });
            }
            Err(_) => {}
        }
    }
    job.session.on_complete(Completion { id: job.id, outcome: delivered });
}

/// Per-attempt state threaded from the worker's retry loop through
/// [`process`] into [`lead`], connecting failure attribution (which
/// backends does a panic charge?) and routing memory (which backends must
/// the next attempt avoid?) across the `catch_unwind` boundary.
#[derive(Default)]
struct AttemptCtx {
    /// Backends that failed earlier attempts of this job; routing for the
    /// current attempt excludes them (never to zero — see
    /// [`PortfolioScheduler::rank_filtered`]).
    excluded: Vec<usize>,
    /// Backends the current attempt dispatched, recorded right after
    /// routing so a panic mid-solve can still be attributed.
    attempted: Vec<usize>,
    /// Set by [`lead`] once it has fed per-participant outcomes to the
    /// circuit breakers, so the worker's panic path does not double-charge.
    accounted: bool,
    /// Absolute deadline (nanoseconds since the service epoch), from
    /// [`JobSpec::deadline`] and the job's enqueue time.
    deadline_at_ns: Option<u64>,
    /// The encoded model, kept across attempts so a retry never re-runs the
    /// user's `to_qubo` (routed jobs carry theirs in [`RouteInfo`] instead).
    qubo: Option<Arc<QuboModel>>,
    /// The shared compilation, kept across attempts: a retry after a
    /// mid-solve failure reuses it instead of recompiling, which is where
    /// most of the per-retry overhead used to go.
    compiled: Option<Arc<CompiledQubo>>,
    /// The canonical fingerprint and permutation derived from `compiled`,
    /// cached with it; also stamps the journal's `Completed` record.
    canonical: Option<(u64, Arc<Vec<usize>>)>,
}

/// Extracts a human-readable message from a panic payload: the common
/// `&str` / `String` payloads verbatim, a placeholder otherwise. Shared by
/// the worker's `catch_unwind` handler and anything else that reports
/// panics as [`JobError::Panicked`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Consults the service's fault injector at `site` and applies whatever it
/// forces: `Delay` sleeps and proceeds, `Error` returns
/// [`JobError::Injected`], `Panic` unwinds (caught by the worker's
/// `catch_unwind` exactly like a real bug). A service without an injector
/// pays only the `None` check.
fn apply_fault(shared: &Shared, site: FaultSite, backend: Option<&str>) -> Result<(), JobError> {
    let Some(injector) = &shared.injector else {
        return Ok(());
    };
    match injector.inject(site, backend) {
        None => Ok(()),
        Some(FaultAction::Delay(d)) => {
            wait_on_clock(shared, d);
            Ok(())
        }
        Some(FaultAction::Error(msg)) => Err(JobError::Injected(msg)),
        Some(FaultAction::Panic(msg)) => panic!("{msg}"),
    }
}

/// Waits until `duration` has elapsed on the service clock. Against the
/// default monotonic clock this is an ordinary bounded wait; against an
/// injected [`crate::cluster::ManualClock`] it returns as soon as the test
/// advances the clock past the due time, polling in millisecond slices of
/// real time — so a test can inject a ten-second delay fault and discharge
/// it instantly. Shutdown cuts the wait short.
fn wait_on_clock(shared: &Shared, duration: Duration) {
    let due = shared
        .clock
        .now_micros()
        .saturating_add(duration.as_micros().min(u128::from(u64::MAX)) as u64);
    loop {
        let now = shared.clock.now_micros();
        if now >= due || shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let remaining = Duration::from_micros(due - now);
        std::thread::sleep(remaining.min(Duration::from_millis(1)));
    }
}

/// The cooperative deadline checkpoint: a [`StageProbe`] tee'd into every
/// participant's pipeline options when the job has a deadline. Solver loops
/// poll [`StageProbe::should_stop`] at restart/sweep boundaries; once the
/// clock passes the absolute deadline the probe answers `true` (and
/// remembers that it fired), the solvers return their best-so-far, and
/// [`lead`] converts the truncated run into
/// [`JobError::DeadlineExceeded`] with a [`PartialSolution`]. Jobs without
/// a deadline never construct one, so the unprobed paths stay bit-identical.
struct DeadlineProbe {
    epoch: Instant,
    deadline_at_ns: u64,
    fired: AtomicBool,
}

impl DeadlineProbe {
    fn new(epoch: Instant, deadline_at_ns: u64) -> Self {
        Self { epoch, deadline_at_ns, fired: AtomicBool::new(false) }
    }

    fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

impl StageProbe for DeadlineProbe {
    fn should_stop(&self) -> bool {
        if self.epoch.elapsed().as_nanos() as u64 >= self.deadline_at_ns {
            self.fired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// The cache/flight "requested backend" discriminator for a spec: the
/// pinned name, the clamped race marker, or `None` for auto-routing. The
/// marker carries the *clamped* k: `racing(999)` and
/// `racing(<eligible count>)` run the identical participant set and must
/// share a cache entry. Registered backend names never contain ':', so the
/// marker cannot collide with a pinned name.
fn requested_backend(shared: &Shared, spec: &JobSpec, n_vars: usize) -> Option<String> {
    match &spec.backend {
        BackendChoice::Auto => None,
        BackendChoice::Named(name) => Some(name.clone()),
        BackendChoice::Race { k } => {
            let eligible = shared.registry.eligible(n_vars).len();
            Some(format!("race:{}", (*k).clamp(1, eligible.max(1))))
        }
    }
}

fn process(
    shared: &Shared,
    spec: &JobSpec,
    route: Option<&RouteInfo>,
    trace: &mut Option<JobTrace>,
    ctx: &mut AttemptCtx,
) -> JobOutcome {
    // A cluster-routed job arrives with its QUBO already built and
    // canonically fingerprinted; it skips straight to the canonical path.
    if let Some(route) = route {
        return process_routed(shared, spec, route, trace, ctx);
    }
    // The encoding is cached on the attempt context: a retry re-enters
    // here, and the user's `to_qubo` is deterministic, so re-running it
    // would buy nothing and cost the whole encode.
    let qubo = match &ctx.qubo {
        Some(qubo) => Arc::clone(qubo),
        None => {
            let qubo = Arc::new(spec.problem.to_qubo());
            ctx.qubo = Some(Arc::clone(&qubo));
            qubo
        }
    };
    let n_vars = qubo.n_vars();
    let requested = requested_backend(shared, spec, n_vars);
    let requested = requested.as_deref();
    // Single-flight, level 1: the exact (label-order) fingerprint, checked
    // *before* compiling. Two concurrent submissions of the same spec both
    // reach this point cache-cold; without it both would compile and solve
    // — the thundering-herd re-solve the cache alone cannot prevent,
    // because its entry only appears after the first solve finishes.
    let exact_key = FlightKey::exact(
        spec.problem.name(),
        qubo.fingerprint(),
        &spec.options,
        spec.seed,
        requested,
    );
    loop {
        match shared.inflight.join_or_lead(exact_key.clone()) {
            FlightRole::Leader(lease) => {
                return lead(shared, spec, &qubo, n_vars, requested, lease, trace, ctx)
            }
            FlightRole::Follower(flight) => {
                shared.metrics.on_coalesced();
                let park_start_ns = if trace.is_some() { shared.now_ns() } else { 0 };
                match flight.wait() {
                    FlightResolution::Served(out) => {
                        // An exact duplicate shares the leader's labeling,
                        // so the leader's compilation and canonical
                        // permutation translate its bits verbatim — this
                        // job never compiled.
                        shared.metrics.on_coalesced_served();
                        let result = serve_coalesced(
                            spec,
                            |bits| out.compiled.energy(bits),
                            &out.perm,
                            out.cached.clone(),
                        );
                        if let Some(t) = trace.as_mut() {
                            t.spans.push(Span {
                                stage: Stage::Serve,
                                backend: Some(result.backend.clone()),
                                winner: false,
                                start_ns: park_start_ns,
                                end_ns: shared.now_ns(),
                                stats: StageStats::default(),
                                predicted_seconds: None,
                            });
                        }
                        return Ok(result);
                    }
                    FlightResolution::Failed(err) => {
                        // The leader failed routing deterministically; an
                        // identical spec fails identically.
                        shared.metrics.on_failed();
                        return Err(err);
                    }
                    // The leader panicked without publishing: retry from
                    // the top — this job may become the new leader. The
                    // park suppressed nothing, so net it back out.
                    FlightResolution::Abandoned => {
                        shared.metrics.on_coalesce_abandoned();
                        continue;
                    }
                }
            }
        }
    }
}

/// Runs a cluster-routed job. The cluster already built the QUBO and
/// computed its canonical fingerprint (compile-free) to pick the shard, so
/// the worker goes straight to the canonical cache key and the canonical
/// single-flight — duplicates of a hot fingerprint all hash to this shard,
/// land here, and coalesce regardless of variable labeling. A follower or
/// cache hit translates the canonical assignment through *this* job's own
/// permutation and scores bits with its own (uncompiled) model —
/// [`qdm_qubo::model::QuboModel::energy`] is bit-identical to the compiled
/// evaluation — so serving never costs a compilation. Only a flight leader
/// compiles, inside [`lead`]: its `extend` with the canonical key this
/// lease already holds is an idempotent no-op.
fn process_routed(
    shared: &Shared,
    spec: &JobSpec,
    route: &RouteInfo,
    trace: &mut Option<JobTrace>,
    ctx: &mut AttemptCtx,
) -> JobOutcome {
    let qubo = &route.qubo;
    let n_vars = qubo.n_vars();
    let requested = requested_backend(shared, spec, n_vars);
    let requested = requested.as_deref();
    if let Some(t) = trace.as_mut() {
        t.fingerprint = route.canonical_fp;
    }
    let key =
        CacheKey::new(spec.problem.name(), route.canonical_fp, &spec.options, spec.seed, requested);
    if let Some(cached) = shared.cache.get(&key) {
        shared.metrics.on_cache_hit();
        let serve_start_ns = if trace.is_some() { shared.now_ns() } else { 0 };
        let result = serve_cached(spec, |bits| qubo.energy(bits), &route.perm, cached);
        if let Some(t) = trace.as_mut() {
            t.spans.push(Span {
                stage: Stage::Serve,
                backend: Some(result.backend.clone()),
                winner: false,
                start_ns: serve_start_ns,
                end_ns: shared.now_ns(),
                stats: StageStats::default(),
                predicted_seconds: None,
            });
        }
        return Ok(result);
    }
    loop {
        match shared.inflight.join_or_lead(FlightKey::Canonical(key.clone())) {
            FlightRole::Leader(lease) => {
                return lead(shared, spec, qubo, n_vars, requested, lease, trace, ctx);
            }
            FlightRole::Follower(flight) => {
                shared.metrics.on_coalesced();
                let park_start_ns = if trace.is_some() { shared.now_ns() } else { 0 };
                match flight.wait() {
                    FlightResolution::Served(out) => {
                        shared.metrics.on_coalesced_served();
                        let result = serve_coalesced(
                            spec,
                            |bits| qubo.energy(bits),
                            &route.perm,
                            out.cached.clone(),
                        );
                        if let Some(t) = trace.as_mut() {
                            t.spans.push(Span {
                                stage: Stage::Serve,
                                backend: Some(result.backend.clone()),
                                winner: false,
                                start_ns: park_start_ns,
                                end_ns: shared.now_ns(),
                                stats: StageStats::default(),
                                predicted_seconds: None,
                            });
                        }
                        return Ok(result);
                    }
                    FlightResolution::Failed(err) => {
                        shared.metrics.on_failed();
                        return Err(err);
                    }
                    FlightResolution::Abandoned => {
                        shared.metrics.on_coalesce_abandoned();
                        continue;
                    }
                }
            }
        }
    }
}

/// Runs a job that leads its single-flight: compile once, check the cache,
/// coalesce onto a permuted-identical in-flight duplicate if one exists,
/// else solve — and publish whatever happened to any parked followers.
#[allow(clippy::too_many_arguments)]
fn lead(
    shared: &Shared,
    spec: &JobSpec,
    qubo: &QuboModel,
    n_vars: usize,
    requested: Option<&str>,
    mut lease: crate::cache::FlightLease<'_>,
    trace: &mut Option<JobTrace>,
    ctx: &mut AttemptCtx,
) -> JobOutcome {
    let tracing = trace.is_some();
    // Injected compile/presolve/serve faults return through `?`, dropping
    // the lease unpublished: followers see `Abandoned` and retry from the
    // top rather than being served an occurrence-dependent error as if it
    // were deterministic.
    apply_fault(shared, FaultSite::Compile, None)?;
    // THE compile of this job: every downstream consumer — canonical
    // fingerprinting, presolve, each dispatched backend (all k of a race),
    // and any exact-duplicate followers — shares this one
    // `Arc<CompiledQubo>`. No other stage on the service path compiles.
    let compile_start_ns = if tracing { shared.now_ns() } else { 0 };
    // A retry after a mid-solve failure reuses the attempt context's
    // compilation (`None` seconds — nothing was compiled, so nothing is
    // reported as compile sharing); recompiling the bit-identical artifact
    // on every attempt was the bulk of the per-retry overhead.
    let (compiled, compile_seconds) = match &ctx.compiled {
        Some(compiled) => (Arc::clone(compiled), None),
        None => {
            let compile_start = Instant::now();
            let compiled = Arc::new(qubo.compile());
            let seconds = compile_start.elapsed().as_secs_f64();
            ctx.compiled = Some(Arc::clone(&compiled));
            (compiled, Some(seconds))
        }
    };
    let (canonical_fp, perm) = match &ctx.canonical {
        Some((fp, perm)) => (*fp, Arc::clone(perm)),
        None => {
            let (fp, perm) = compiled.canonical_form();
            let perm = Arc::new(perm);
            ctx.canonical = Some((fp, Arc::clone(&perm)));
            (fp, perm)
        }
    };
    if let Some(t) = trace.as_mut() {
        t.fingerprint = canonical_fp;
        t.spans.push(Span {
            stage: Stage::Compile,
            backend: None,
            winner: false,
            start_ns: compile_start_ns,
            end_ns: shared.now_ns(),
            stats: StageStats::default(),
            predicted_seconds: None,
        });
    }
    let key = CacheKey::new(spec.problem.name(), canonical_fp, &spec.options, spec.seed, requested);
    if let Some(cached) = shared.cache.get(&key) {
        shared.metrics.on_cache_hit();
        let serve_start_ns = if tracing { shared.now_ns() } else { 0 };
        let result = serve_cached(spec, |bits| compiled.energy(bits), &perm, cached.clone());
        if let Some(t) = trace.as_mut() {
            t.spans.push(Span {
                stage: Stage::Serve,
                backend: Some(result.backend.clone()),
                winner: false,
                start_ns: serve_start_ns,
                end_ns: shared.now_ns(),
                stats: StageStats::default(),
                predicted_seconds: None,
            });
        }
        lease.publish(Ok(FlightOutput { cached, compiled, perm }));
        return Ok(result);
    }

    // Single-flight, level 2: the canonical key. A permuted-but-identical
    // encoding may already be solving under a different exact key; coalesce
    // onto it and translate its canonical assignment through *this* job's
    // own permutation — the same machinery a permuted cache hit uses.
    // An `extend` returning `None` means this job now leads the canonical
    // flight too and proceeds to solve; `Abandoned` retries the extend (the
    // canonical leader panicked and its key was removed).
    while let Some(flight) = lease.extend(FlightKey::Canonical(key.clone())) {
        shared.metrics.on_coalesced();
        let park_start_ns = if tracing { shared.now_ns() } else { 0 };
        match flight.wait() {
            FlightResolution::Served(out) => {
                shared.metrics.on_coalesced_served();
                let result =
                    serve_coalesced(spec, |bits| compiled.energy(bits), &perm, out.cached.clone());
                if let Some(t) = trace.as_mut() {
                    t.spans.push(Span {
                        stage: Stage::Serve,
                        backend: Some(result.backend.clone()),
                        winner: false,
                        start_ns: park_start_ns,
                        end_ns: shared.now_ns(),
                        stats: StageStats::default(),
                        predicted_seconds: None,
                    });
                }
                // Publish through to this flight's own exact followers with
                // *this* labeling's compilation and permutation, which is
                // the one that translates their bits correctly.
                lease.publish(Ok(FlightOutput { cached: out.cached, compiled, perm }));
                return Ok(result);
            }
            FlightResolution::Failed(err) => {
                shared.metrics.on_failed();
                lease.publish(Err(err.clone()));
                return Err(err);
            }
            FlightResolution::Abandoned => {
                // The canonical leader panicked; its key is gone, so the
                // extend retries (and may succeed, making this job the
                // solver). The park suppressed nothing.
                shared.metrics.on_coalesce_abandoned();
                continue;
            }
        }
    }

    // Degraded routing: skip backends that failed earlier attempts of this
    // job and backends whose circuit breaker is open (the check also
    // half-opens breakers whose cooldown elapsed, making this routing the
    // probe). Pinned jobs keep their backend — a pin is an instruction, not
    // a preference. Ranking is priced in expected seconds on the compiled
    // model's *measured* coupling degree — this is the one decision point
    // that runs after compilation, so it gets the real shape instead of
    // the default degree assumption — and half-open breakers surviving the
    // exclusion are priced up via the capacity discount rather than
    // treated as fully healthy.
    let shape = CostShape::with_degree(n_vars, compiled.avg_degree());
    let excluded = |idx: usize| {
        ctx.excluded.contains(&idx)
            || shared.breakers.as_ref().is_some_and(|b| b.is_open(idx, &shared.metrics))
    };
    let capacity = |idx: usize| shared.breakers.as_ref().map_or(1.0, |b| b.capacity(idx));
    // A half-open breaker is an explicit probe request: the backend's
    // recent failures already price it far down the ranking (success-rate
    // and capacity penalties), so left to expected seconds alone the probe
    // would never dispatch and the breaker never resolve. Promote half-open
    // backends to the front (stable within each group, so the cost order
    // is otherwise preserved) — the probe's outcome closes or re-opens the
    // breaker.
    let probe_first = |mut ranked: Vec<usize>| -> Vec<usize> {
        if let Some(b) = shared.breakers.as_ref() {
            ranked.sort_by_key(|&idx| !b.is_half_open(idx));
        }
        ranked
    };
    let routed: Result<Vec<usize>, JobError> = match &spec.backend {
        BackendChoice::Named(name) => match shared.registry.find(name) {
            None => Err(JobError::UnknownBackend(name.clone())),
            Some(idx) => {
                let max_vars = shared.registry.get(idx).spec.max_vars;
                if max_vars < n_vars {
                    Err(JobError::BackendTooSmall { backend: name.clone(), max_vars, n_vars })
                } else {
                    Ok(vec![idx])
                }
            }
        },
        BackendChoice::Auto => {
            let ranked = probe_first(shared.portfolio.rank_costed(
                &shared.registry,
                shape,
                excluded,
                capacity,
            ));
            match ranked.first() {
                Some(&idx) => Ok(vec![idx]),
                None => Err(JobError::NoEligibleBackend { n_vars }),
            }
        }
        BackendChoice::Race { k } => {
            let ranked = probe_first(shared.portfolio.rank_costed(
                &shared.registry,
                shape,
                excluded,
                capacity,
            ));
            if ranked.is_empty() {
                Err(JobError::NoEligibleBackend { n_vars })
            } else {
                let k = (*k).clamp(1, ranked.len());
                Ok(ranked[..k].to_vec())
            }
        }
    };
    let participants = match routed {
        Ok(participants) => participants,
        Err(err) => {
            // Routing errors are deterministic functions of the spec, so
            // publishing the error serves parked duplicates the exact
            // outcome they would have computed.
            shared.metrics.on_failed();
            lease.publish(Err(err.clone()));
            return Err(err);
        }
    };
    // Record what this attempt dispatches *before* solving: a panic inside
    // a participant unwinds straight past this function, and the worker
    // loop charges exactly these indices to the circuit breakers.
    ctx.attempted = participants.clone();
    // Quote each participant *now*, before any of them runs: the trace
    // records the prediction the router actually acted on, not one
    // recomputed after this very job's observation moved the calibration.
    let predicted: Vec<f64> = participants
        .iter()
        .map(|&idx| {
            let analytic = analytic_seconds(&shared.registry.get(idx).spec, shape);
            shared.portfolio.cost_model().predict_seconds(idx, analytic)
        })
        .collect();
    // One compile served the fingerprint stage plus every participant;
    // under the old compile-per-stage scheme each would have compiled.
    if let Some(compile_seconds) = compile_seconds {
        shared.metrics.on_compile_shared(compile_seconds, 1 + participants.len() as u64);
    }

    let naive_lower_bound = compiled.naive_lower_bound();
    apply_fault(shared, FaultSite::Presolve, None)?;
    // Prepare the seed-independent pipeline front half — presolve and
    // component extraction/compilation — exactly once; every participant
    // of a race reuses it instead of re-running the fixpoint k times.
    // Traced jobs run it under a [`StageProfile`] so the presolve span
    // carries fixpoint round counts; probing never perturbs the result.
    let prepared = if tracing {
        let (opts, profile) = profiled_options(&spec.options);
        let presolve_start_ns = shared.now_ns();
        let prepared = prepare_pipeline(qubo, &compiled, &opts);
        if let Some(t) = trace.as_mut() {
            t.spans.push(Span {
                stage: Stage::Presolve,
                backend: None,
                winner: false,
                start_ns: presolve_start_ns,
                end_ns: shared.now_ns(),
                stats: profile.snapshot(),
                predicted_seconds: None,
            });
        }
        prepared
    } else {
        prepare_pipeline(qubo, &compiled, &spec.options)
    };
    // The cooperative deadline checkpoint, shared by every participant of
    // the attempt; constructed only when the job has a deadline, so
    // deadline-free jobs keep the exact pre-existing probe wiring.
    let deadline_probe =
        ctx.deadline_at_ns.map(|at| Arc::new(DeadlineProbe::new(shared.epoch, at)));
    // Solve: every participant runs the back half on the *same* shared
    // preparation (and therefore the same shared compilation), each under
    // its own RNG seeded from the job seed, so a single-backend job is
    // just a race of one. Scoped threads let the participants borrow the
    // preparation without refcount churn; results land in per-participant
    // slots, so completion order is irrelevant.
    let mut outcomes: Vec<Option<Result<ParticipantRun, JobError>>> =
        (0..participants.len()).map(|_| None).collect();
    if participants.len() == 1 {
        // Fast path: no spawn for the common non-race job.
        outcomes[0] = Some(run_participant(
            shared,
            spec,
            &prepared,
            participants[0],
            tracing,
            deadline_probe.as_ref(),
        ));
    } else {
        std::thread::scope(|scope| {
            for (slot, &idx) in outcomes.iter_mut().zip(&participants) {
                let prepared = &prepared;
                let deadline_probe = deadline_probe.as_ref();
                scope.spawn(move || {
                    *slot =
                        Some(run_participant(shared, spec, prepared, idx, tracing, deadline_probe));
                });
            }
        });
    }

    // Deterministic winner pick among the participants that produced a
    // result: scan in ranking order with strict `<`, so the best energy
    // wins and ties go to the higher-ranked backend — independent of which
    // thread finished first. Participants felled by an injected fault
    // simply drop out of the scan: a race degrades to its survivors.
    let mut winner: Option<usize> = None;
    let mut winner_energy = f64::INFINITY;
    for (slot, outcome) in outcomes.iter().enumerate() {
        if let Some(Ok(run)) = outcome {
            if run.report.energy < winner_energy {
                winner_energy = run.report.energy;
                winner = Some(slot);
            }
        }
    }
    // A deadline that fired during the solve (or elapsed around it) turns
    // the truncated best-so-far into a typed failure. The lease drops
    // unpublished and nothing reaches the cache or the portfolio
    // telemetry: a truncated result must never be served as the real
    // answer, and its artificially short latency must not teach the router.
    if let Some(deadline_at_ns) = ctx.deadline_at_ns {
        if deadline_probe.as_ref().is_some_and(|p| p.fired()) || shared.now_ns() >= deadline_at_ns {
            let partial = winner.and_then(|slot| match &outcomes[slot] {
                Some(Ok(run)) => Some(PartialSolution {
                    bits: run.report.bits.clone(),
                    energy: run.report.energy,
                }),
                _ => None,
            });
            return Err(JobError::DeadlineExceeded { partial });
        }
    }
    let is_race = matches!(spec.backend, BackendChoice::Race { .. });
    for (slot, (&idx, outcome)) in participants.iter().zip(&outcomes).enumerate() {
        let run = match outcome.as_ref().expect("every participant ran") {
            Ok(run) => run,
            Err(_) => {
                // An injected per-backend failure is attributed here, where
                // the backend is known; the panic path attributes in the
                // worker loop instead (see `AttemptCtx::accounted`). The
                // cost model learns the failure too, so an unreliable
                // backend's *expected* seconds rise even while its latency
                // EWMA has no new sample.
                if let Some(breakers) = &shared.breakers {
                    breakers.on_failure(idx, &shared.metrics);
                }
                shared.portfolio.record_failure(idx);
                continue;
            }
        };
        if let Some(breakers) = &shared.breakers {
            breakers.on_success(idx, &shared.metrics);
        }
        let won = Some(slot) == winner;
        shared.portfolio.record(
            &shared.registry,
            idx,
            shape,
            run.seconds,
            energy_quality(run.report.energy, naive_lower_bound),
            run.report.decoded.feasible,
        );
        if is_race {
            shared.portfolio.record_race_outcome(idx, won);
            if !won {
                // The winner's wall time flows through `on_solved` below;
                // losers' time must still land in the solve-time total or
                // race workloads under-report backend cost k-fold.
                shared.metrics.on_race_participant_time(run.seconds);
            }
        }
        if let Some(t) = trace.as_mut() {
            // One solve child span per race participant, winner marked, so
            // the exported timeline shows the whole field — including the
            // losers' wall time a latency metric alone would hide.
            t.spans.push(Span {
                stage: Stage::Solve,
                backend: Some(shared.registry.get(idx).spec.name.clone()),
                winner: won,
                start_ns: run.start_ns,
                end_ns: run.end_ns,
                stats: run.stats,
                predicted_seconds: Some(predicted[slot]),
            });
        }
    }
    ctx.accounted = true;
    let Some(winner_slot) = winner else {
        // Every participant failed. Propagate the best-ranked failure and
        // drop the lease unpublished: injected failures are
        // occurrence-dependent, so a parked follower retrying from the top
        // may well succeed where this attempt did not.
        let err = outcomes
            .into_iter()
            .flatten()
            .find_map(|outcome| outcome.err())
            .expect("no winner means at least one participant failed");
        return Err(err);
    };
    let backend_name = shared.registry.get(participants[winner_slot]).spec.name.clone();
    let ParticipantRun { report, seconds: elapsed, .. } =
        outcomes.swap_remove(winner_slot).expect("winner ran").expect("winner succeeded");
    apply_fault(shared, FaultSite::Serve, Some(&backend_name))?;
    shared.metrics.on_solved(&backend_name, elapsed);
    if is_race {
        shared.metrics.on_race(&backend_name);
    }

    let mut canonical_bits = vec![false; report.bits.len()];
    for (i, &bit) in report.bits.iter().enumerate() {
        canonical_bits[perm[i]] = bit;
    }
    let cached =
        CachedResult { report: report.clone(), canonical_bits, backend: backend_name.clone() };
    // Insert into the cache *before* publishing/deregistering the flight:
    // a duplicate arriving after the flight closes must find the entry.
    shared.cache.insert(key, cached.clone());
    lease.publish(Ok(FlightOutput { cached, compiled, perm }));
    Ok(JobResult {
        job_id: 0, // stamped with the queue id by the worker loop
        report,
        backend: backend_name,
        from_cache: false,
        coalesced: false,
    })
}

/// Serves a follower that coalesced onto an in-flight leader: the standard
/// cache-hit translation, re-flagged as a coalesced (not cached) result.
fn serve_coalesced(
    spec: &JobSpec,
    energy: impl Fn(&[bool]) -> f64,
    perm: &[usize],
    cached: CachedResult,
) -> JobResult {
    let mut result = serve_cached(spec, energy, perm, cached);
    result.from_cache = false;
    result.coalesced = true;
    result
}

/// Clones the job's options with a fresh [`StageProfile`] tee'd in front of
/// any user-supplied probe, so traced runs collect per-stage counters
/// without the user's hooks seeing anything different. Probes observe only
/// — the probed solver paths are bit-identical to the unprobed ones — so
/// injection never changes a result.
fn profiled_options(options: &PipelineOptions) -> (PipelineOptions, Arc<StageProfile>) {
    let profile = Arc::new(StageProfile::new());
    let mut opts = options.clone();
    opts.probe = Some(match &options.probe {
        Some(user) => {
            Arc::new(TeeProbe(Arc::clone(user), Arc::clone(&profile) as Arc<dyn StageProbe>))
                as Arc<dyn StageProbe>
        }
        None => Arc::clone(&profile) as Arc<dyn StageProbe>,
    });
    (opts, profile)
}

/// One race participant's result: the pipeline report, its wall time, and —
/// when the job is traced — the span endpoints and solver-internal counters
/// its worker collected. Assembled on the participant's own thread; the
/// leader folds these into the job trace after the scope joins, so racing
/// threads never touch shared tracing state.
struct ParticipantRun {
    report: PipelineReport,
    seconds: f64,
    start_ns: u64,
    end_ns: u64,
    stats: StageStats,
}

/// Runs one backend over the job's shared pipeline preparation. Each
/// participant seeds its own RNG from the job seed, so results do not
/// depend on scheduling and `Race { k: 1 }` reproduces the auto-routed
/// result bit-for-bit — traced or not. The [`FaultSite::Solve`] seam fires
/// here with the backend's name, so a plan can fell one participant of a
/// race; a `deadline` probe, when present, is tee'd behind any
/// tracing/user probes so solvers poll it at restart/sweep boundaries.
fn run_participant(
    shared: &Shared,
    spec: &JobSpec,
    prepared: &PreparedPipeline<'_>,
    backend_idx: usize,
    tracing: bool,
    deadline: Option<&Arc<DeadlineProbe>>,
) -> Result<ParticipantRun, JobError> {
    let backend = shared.registry.get(backend_idx);
    apply_fault(shared, FaultSite::Solve, Some(&backend.spec.name))?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let profiled = tracing.then(|| profiled_options(&spec.options));
    let profile = profiled.as_ref().map(|(_, profile)| Arc::clone(profile));
    let mut owned = profiled.map(|(opts, _)| opts);
    if let Some(probe) = deadline {
        let mut opts = owned.take().unwrap_or_else(|| spec.options.clone());
        let deadline_probe = Arc::clone(probe) as Arc<dyn StageProbe>;
        opts.probe = Some(match opts.probe.take() {
            Some(existing) => Arc::new(TeeProbe(existing, deadline_probe)) as Arc<dyn StageProbe>,
            None => deadline_probe,
        });
        owned = Some(opts);
    }
    let options = owned.as_ref().unwrap_or(&spec.options);
    let start_ns = if tracing { shared.now_ns() } else { 0 };
    let start = Instant::now();
    let report = run_prepared(&*spec.problem, prepared, backend.solver(), options, &mut rng);
    let seconds = start.elapsed().as_secs_f64();
    let end_ns = if tracing { shared.now_ns() } else { 0 };
    let stats = profile.map(|profile| profile.snapshot()).unwrap_or_default();
    Ok(ParticipantRun { report, seconds, start_ns, end_ns, stats })
}

/// Renders job traces as Chrome `trace_event` JSON (the "JSON Array
/// Format" with a `traceEvents` wrapper): one complete (`"ph":"X"`) event
/// per span, timestamps in fractional microseconds since the service
/// epoch. Every job gets its own thread lane (`tid = job_id·100`); solve
/// spans — which overlap each other during a race — fan out to
/// `tid = job_id·100 + 1 + slot`. Hand-rolled because the workspace's
/// serde shim has no serializer; the JSON-validity test in
/// `tests/observability.rs` keeps it honest.
fn render_chrome_trace(traces: &[JobTrace]) -> String {
    fn escape(s: &str, out: &mut String) {
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    let mut out = String::with_capacity(1024 + traces.len() * 512);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        let base_tid = trace.job_id * 100;
        let mut solve_slot = 0u64;
        for span in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let tid = if span.stage == Stage::Solve {
                solve_slot += 1;
                base_tid + solve_slot
            } else {
                base_tid
            };
            out.push_str("{\"name\":\"");
            escape(span.stage.name(), &mut out);
            out.push_str("\",\"cat\":\"qdm\",\"ph\":\"X\",\"ts\":");
            out.push_str(&format!("{:.3}", span.start_ns as f64 / 1e3));
            out.push_str(",\"dur\":");
            out.push_str(&format!("{:.3}", span.duration_ns() as f64 / 1e3));
            out.push_str(&format!(",\"pid\":1,\"tid\":{tid},\"args\":{{"));
            out.push_str(&format!("\"job\":{},\"session\":{}", trace.job_id, trace.session));
            if let Some(shard) = trace.shard {
                out.push_str(&format!(",\"shard\":{shard}"));
            }
            out.push_str(",\"problem\":\"");
            escape(&trace.problem, &mut out);
            out.push_str(&format!(
                "\",\"lane\":\"{:?}\",\"seed\":{},\"fingerprint\":\"{:016x}\",\"outcome\":\"{}\"",
                trace.lane,
                trace.seed,
                trace.fingerprint,
                trace.outcome.name()
            ));
            if let Some(backend) = &span.backend {
                out.push_str(",\"backend\":\"");
                escape(backend, &mut out);
                out.push('"');
            }
            if span.stage == Stage::Solve {
                out.push_str(&format!(",\"winner\":{}", span.winner));
            }
            if !span.stats.is_empty() {
                let s = &span.stats;
                out.push_str(&format!(
                    ",\"presolve_rounds\":{},\"presolve_fixed\":{},\"restarts\":{},\
                     \"sweeps\":{},\"proposals\":{},\"accepted\":{}",
                    s.presolve_rounds,
                    s.presolve_fixed,
                    s.restarts,
                    s.sweeps,
                    s.proposals,
                    s.accepted
                ));
            }
            out.push_str("}}");
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Serves a cache hit. The common case — the requester's encoding is
/// labeled exactly like the original submitter's — returns the stored
/// report bit-identically. A permuted-but-identical encoding instead gets
/// the canonical assignment translated into its own variable order, with
/// the label-dependent fields (bits, energy, decode) re-derived; energy and
/// feasibility are preserved by construction. `energy` scores a bit vector
/// under the requester's labeling — either a compiled evaluation or
/// [`qdm_qubo::model::QuboModel::energy`]; the two are bit-identical, so
/// callers that never compiled (cluster-routed followers) pass the model's.
fn serve_cached(
    spec: &JobSpec,
    energy: impl Fn(&[bool]) -> f64,
    perm: &[usize],
    cached: CachedResult,
) -> JobResult {
    let mut bits = vec![false; perm.len()];
    for (i, slot) in bits.iter_mut().enumerate() {
        *slot = cached.canonical_bits[perm[i]];
    }
    if bits == cached.report.bits {
        return JobResult {
            job_id: 0, // stamped with the queue id by the worker loop
            report: cached.report,
            backend: cached.backend,
            from_cache: true,
            coalesced: false,
        };
    }
    let energy = energy(&bits);
    let decoded = spec.problem.decode(&bits);
    let report = PipelineReport { bits, energy, decoded, ..cached.report };
    JobResult {
        job_id: 0, // stamped with the queue id by the worker loop
        report,
        backend: cached.backend,
        from_cache: true,
        coalesced: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_core::problem::Decoded;
    use qdm_qubo::model::QuboModel;
    use qdm_qubo::penalty;

    /// Pick-one-of-n with per-option costs; n scales to test routing.
    struct PickOne {
        costs: Vec<f64>,
    }

    impl DmProblem for PickOne {
        fn name(&self) -> String {
            format!("pick-one-of-{}", self.costs.len())
        }
        fn n_vars(&self) -> usize {
            self.costs.len()
        }
        fn to_qubo(&self) -> QuboModel {
            let mut q = QuboModel::new(self.costs.len());
            for (i, &c) in self.costs.iter().enumerate() {
                q.add_linear(i, c);
            }
            let vars: Vec<usize> = (0..self.costs.len()).collect();
            let weight = penalty::penalty_weight(&q);
            penalty::exactly_one(&mut q, &vars, weight);
            q
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            let chosen: Vec<usize> =
                bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
            Decoded {
                feasible: chosen.len() == 1,
                objective: chosen.iter().map(|&i| self.costs[i]).sum(),
                summary: format!("chose {chosen:?}"),
            }
        }
    }

    fn pick(n: usize) -> SharedProblem {
        Arc::new(PickOne { costs: (0..n).map(|i| ((i * 7) % 5) as f64 + 1.0).collect() })
    }

    #[test]
    fn single_job_solves_and_decodes() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let result = service.run(JobSpec::new(pick(4), 1)).expect("solvable");
        assert!(result.report.decoded.feasible);
        assert!(!result.from_cache);
        assert_eq!(service.report().jobs_completed, 1);
    }

    #[test]
    fn repeat_submission_hits_cache_with_identical_result() {
        let service = SolverService::new(ServiceConfig {
            workers: 3,
            cache_capacity: 16,
            ..Default::default()
        });
        let first = service.run(JobSpec::new(pick(5), 9)).expect("ok");
        let second = service.run(JobSpec::new(pick(5), 9)).expect("ok");
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(first.report.bits, second.report.bits);
        assert_eq!(first.report.energy, second.report.energy);
        assert_eq!(first.backend, second.backend);
        let report = service.report();
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cache_misses, 1);
        assert!(report.cache_hit_rate() > 0.0);
    }

    #[test]
    fn different_seeds_do_not_share_cache_entries() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let a = service.run(JobSpec::new(pick(4), 1)).expect("ok");
        let b = service.run(JobSpec::new(pick(4), 2)).expect("ok");
        assert!(!a.from_cache);
        assert!(!b.from_cache);
        assert_eq!(service.cache_len(), 2);
    }

    #[test]
    fn batch_outcomes_preserve_submission_order() {
        let service = SolverService::new(ServiceConfig {
            workers: 4,
            cache_capacity: 64,
            ..Default::default()
        });
        let batch: Vec<JobSpec> =
            (0..12).map(|i| JobSpec::new(pick(3 + (i % 4)), i as u64)).collect();
        let sizes: Vec<usize> = batch.iter().map(|j| j.problem.n_vars()).collect();
        let outcomes = service.run_batch(batch);
        assert_eq!(outcomes.len(), 12);
        for (outcome, want_n) in outcomes.iter().zip(sizes) {
            let result = outcome.as_ref().expect("solvable");
            assert_eq!(result.report.n_vars, want_n, "order preserved by problem size");
            assert!(result.report.decoded.feasible);
        }
    }

    #[test]
    fn pinned_backend_is_honored() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let result =
            service.run(JobSpec::new(pick(4), 3).on_backend("tabu")).expect("tabu handles 4");
        assert_eq!(result.backend, "tabu");
        assert_eq!(result.report.solver, "tabu");
    }

    #[test]
    fn pinned_backend_too_small_fails_cleanly() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        // QAOA caps at 20 variables.
        let err = service.run(JobSpec::new(pick(24), 3).on_backend("qaoa")).unwrap_err();
        match err {
            JobError::BackendTooSmall { backend, max_vars, n_vars } => {
                assert_eq!(backend, "qaoa");
                assert!(max_vars < n_vars);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = service.run(JobSpec::new(pick(4), 3).on_backend("warp-drive")).unwrap_err();
        assert_eq!(err, JobError::UnknownBackend("warp-drive".into()));
    }

    #[test]
    fn auto_routing_respects_capacity() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        // 30 variables exceeds exact (26) and every gate-based route (<= 20).
        let result = service.run(JobSpec::new(pick(30), 5)).expect("heuristics take it");
        let idx = service.registry().find(&result.backend).expect("known backend");
        assert!(service.registry().get(idx).spec.max_vars >= 30);
    }

    /// Same QUBO as `PickOne` but a different problem type with its own
    /// decode — must not share `PickOne`'s cache entries.
    struct PickOneRelabeled {
        inner: PickOne,
    }

    impl DmProblem for PickOneRelabeled {
        fn name(&self) -> String {
            "pick-one-relabeled".into()
        }
        fn n_vars(&self) -> usize {
            self.inner.n_vars()
        }
        fn to_qubo(&self) -> QuboModel {
            self.inner.to_qubo()
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            let mut d = self.inner.decode(bits);
            d.summary = format!("relabeled: {}", d.summary);
            d
        }
    }

    #[test]
    fn identical_qubos_from_different_problem_types_do_not_share_cache() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let a = service.run(JobSpec::new(pick(4), 5)).expect("ok");
        let costs = (0..4).map(|i| ((i * 7) % 5) as f64 + 1.0).collect();
        let relabeled = Arc::new(PickOneRelabeled { inner: PickOne { costs } });
        let b = service.run(JobSpec::new(relabeled, 5)).expect("ok");
        assert!(!b.from_cache, "coefficient-identical QUBO of another type must re-solve");
        assert_eq!(b.report.problem, "pick-one-relabeled");
        assert!(b.report.decoded.summary.starts_with("relabeled:"));
        assert_ne!(a.report.decoded.summary, b.report.decoded.summary);
    }

    /// A problem whose encoding panics, for worker-survival tests.
    struct Explosive;

    impl DmProblem for Explosive {
        fn name(&self) -> String {
            "explosive".into()
        }
        fn n_vars(&self) -> usize {
            2
        }
        fn to_qubo(&self) -> QuboModel {
            panic!("boom: bad encoding");
        }
        fn decode(&self, _bits: &[bool]) -> Decoded {
            unreachable!()
        }
    }

    #[test]
    fn panicking_job_fails_cleanly_and_pool_survives() {
        let service = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        });
        // With a single worker, the pool only survives the panic if the
        // worker caught it.
        let err = service.run(JobSpec::new(Arc::new(Explosive), 1)).unwrap_err();
        match err {
            JobError::Panicked(msg) => assert!(msg.contains("boom"), "payload: {msg}"),
            other => panic!("unexpected error {other:?}"),
        }
        // The same worker must still answer normal jobs afterwards.
        let ok = service.run(JobSpec::new(pick(4), 2)).expect("pool survived the panic");
        assert!(ok.report.decoded.feasible);
        let report = service.report();
        assert_eq!(report.jobs_failed, 1);
        assert_eq!(report.jobs_completed, 1);
    }

    #[test]
    fn failed_routing_is_counted_in_the_ledger() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let _ = service.run(JobSpec::new(pick(4), 3).on_backend("warp-drive")).unwrap_err();
        let _ = service.run(JobSpec::new(pick(24), 3).on_backend("qaoa")).unwrap_err();
        let report = service.report();
        assert_eq!(report.jobs_submitted, 2);
        assert_eq!(report.jobs_failed, 2, "unknown + undersized backends both count");
        assert_eq!(report.jobs_completed, 0);
    }

    #[test]
    fn service_shuts_down_cleanly_with_queued_work_done() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let outcomes = service.run_batch((0..6).map(|i| JobSpec::new(pick(4), i)).collect());
        assert_eq!(outcomes.len(), 6);
        drop(service); // must not hang or panic
    }

    #[test]
    fn race_of_one_matches_auto_routing_bit_for_bit() {
        let auto_service = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        });
        let race_service = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        });
        let a = auto_service.run(JobSpec::new(pick(6), 11)).expect("ok");
        let b = race_service.run(JobSpec::new(pick(6), 11).racing(1)).expect("ok");
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.report.bits, b.report.bits);
        assert_eq!(a.report.energy.to_bits(), b.report.energy.to_bits());
    }

    #[test]
    fn race_runs_top_k_and_records_outcomes() {
        let service = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        });
        let result = service.run(JobSpec::new(pick(6), 3).racing(3)).expect("ok");
        assert!(result.report.decoded.feasible);
        // 6 vars routes exact into the field; nothing can beat a certified
        // optimum, and exact ranks first, so it wins the tie.
        assert_eq!(result.backend, "exact");
        let report = service.report();
        assert_eq!(report.race_jobs, 1);
        assert_eq!(report.race_wins, vec![("exact".to_string(), 1)]);
        assert!((report.compile_seconds_saved) >= 0.0);
        let entries: u64 = service.shared.portfolio.stats().iter().map(|s| s.race_entries).sum();
        assert_eq!(entries, 3, "every participant's outcome is recorded");
        let observations: u64 =
            service.shared.portfolio.stats().iter().map(|s| s.observations).sum();
        assert_eq!(observations, 3, "every participant feeds latency/quality telemetry");
    }

    #[test]
    fn race_repeat_is_a_cache_hit_and_distinct_from_other_choices() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let first = service.run(JobSpec::new(pick(5), 9).racing(2)).expect("ok");
        let again = service.run(JobSpec::new(pick(5), 9).racing(2)).expect("ok");
        assert!(!first.from_cache);
        assert!(again.from_cache, "identical race jobs share a cache entry");
        assert_eq!(first.report.bits, again.report.bits);
        // Same work under Auto or a different k is a different cache row.
        let auto = service.run(JobSpec::new(pick(5), 9)).expect("ok");
        assert!(!auto.from_cache, "race and auto results are keyed separately");
    }

    #[test]
    fn race_with_zero_k_clamps_and_oversized_k_uses_all_eligible() {
        let service = SolverService::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            ..Default::default()
        });
        let zero = service.run(JobSpec::new(pick(4), 1).racing(0)).expect("k clamps to 1");
        assert!(zero.report.decoded.feasible);
        let huge = service.run(JobSpec::new(pick(4), 2).racing(999)).expect("k caps at eligible");
        assert!(huge.report.decoded.feasible);
        // The cache key carries the clamped k: any oversized k that clamps
        // to the same participant set shares the entry.
        let same_clamp =
            service.run(JobSpec::new(pick(4), 2).racing(10_000)).expect("k caps at eligible");
        assert!(same_clamp.from_cache, "clamp-equal oversized races must share a cache entry");
        assert_eq!(same_clamp.report.bits, huge.report.bits);
    }

    #[test]
    fn queue_depth_metrics_track_batch_traffic() {
        let service = SolverService::new(ServiceConfig {
            workers: 2,
            cache_capacity: 16,
            ..Default::default()
        });
        let _ = service.run_batch((0..4).map(|i| JobSpec::new(pick(4), i)).collect());
        let report = service.report();
        assert_eq!(report.queue_depth, 0, "all jobs drained");
        assert!(report.queue_depth_peak >= 1);
        assert_eq!(report.jobs_cancelled, 0);
    }
}
