//! The calibrated cost model: one predicted-seconds estimate shared by
//! every layer of the runtime's decision plane.
//!
//! Four layers used to invent their own notion of "cost": the portfolio
//! ranked on raw EWMA latency seeded from hand-tuned static priors, the
//! fair scheduler's deficit-round-robin charged `n_vars`, the cluster's
//! token buckets drained 1.0 per job, and shedding looked at queue
//! *length*. This module replaces all four currencies with one:
//! **predicted seconds of backend time**, produced by per-backend analytic
//! estimators ([`analytic_seconds`]) and corrected online by the latency
//! telemetry the runtime already collects — the trace-then-estimate
//! architecture of the QDK resource estimator applied to our own
//! telemetry.
//!
//! The estimate flows in three refinements:
//!
//! 1. **Analytic** ([`analytic_seconds`]) — a cold-start curve per backend
//!    family with documented units (seconds): exhaustive enumeration and
//!    the gate-based simulator routes pay an exponential state-space
//!    factor, annealing/tabu metaheuristics pay
//!    `sweeps × n_vars × avg_degree` coupling evaluations, and random
//!    sampling is the cheapest per evaluation. These replace the old
//!    `SolverSpec::prior_cost` unit-free constants.
//! 2. **Predicted** ([`CostModel::predict_seconds`]) — the analytic value
//!    times a per-backend calibration ratio, an EWMA of
//!    `observed / analytic` seeded by the first observation. Calibration
//!    absorbs everything the analytic shape cannot know (host speed,
//!    cache effects, constant factors) while the shape keeps extrapolation
//!    sane across problem sizes the backend has never seen.
//! 3. **Expected** ([`CostModel::expected_seconds`]) — reliability-priced:
//!    predicted latency ÷ observed success rate ÷ breaker capacity. An
//!    unreliable backend's expected cost is its latency divided by its
//!    success rate, not its raw EWMA; an open or half-open circuit breaker
//!    discounts the backend's capacity (see
//!    [`crate::breaker`]) rather than merely excluding it from one
//!    ranking.
//! 4. **Routing** ([`CostModel::expected_routing_seconds`]) — the variant
//!    backends are *compared* on when a route or race lineup is chosen.
//!    Calibration enters as the backend's quantized deviation from the
//!    fleet-wide common-mode ratio instead of the raw EWMA, so uniform
//!    environment slowness and measurement jitter cannot flip a routing
//!    decision — identical job streams route identically, which the
//!    crash-safe runtime's deterministic recovery depends on.
//!
//! Consumers: [`crate::portfolio::PortfolioScheduler`] routes and picks
//! race participants by expected seconds; the DRR scheduler
//! ([`crate::scheduler`]) charges predicted microseconds per job; the
//! cluster's [`crate::cluster::AdmissionConfig`] token buckets drain by
//! predicted seconds; watermark shedding and `retry_after_hint` derive
//! from estimated backlog seconds. None of this changes what a backend
//! computes — the model changes *which* backend runs and *when*, never the
//! bits of a result.

use crate::registry::SolverSpec;
use crate::sync::LockExt;
use qdm_core::solver::SolverKind;
use std::sync::Mutex;

/// Sweep budget the annealing-family analytic curves assume. Matches the
/// default schedule length of the SA/tabu stand-ins; calibration absorbs
/// deviations.
pub const DEFAULT_SWEEPS: f64 = 800.0;

/// Seconds per coupling evaluation in an annealing/tabu sweep (one
/// neighbor read + multiply-accumulate on the compiled CSR).
const COUPLING_EVAL_SECONDS: f64 = 1.5e-9;

/// Seconds per enumerated state for exhaustive enumeration. Measured on
/// the reference container (release build, `examples/cost_calibration`):
/// actual ÷ 2^n settles at 7–9e-8 s/state for n = 14..22.
const EXACT_STATE_SECONDS: f64 = 7e-8;

/// Seconds per 2^n state-vector slot for one gate-based route (circuit
/// depth × per-amplitude gate cost folded into one constant — the dense
/// simulator touches the whole vector per layer). Measured like
/// [`EXACT_STATE_SECONDS`]: the adiabatic/gate simulators run 4–5e-6
/// s/slot on the reference container.
const GATE_STATE_SECONDS: f64 = 4e-6;

/// Fixed per-job cost added to every analytic estimate: queue handoff,
/// compile-cache lookup, decode, and channel completion. Without this
/// floor a microsecond-scale job's calibration ratio would measure the
/// *runtime's* overhead, not the backend's speed, and poison
/// extrapolation to larger shapes.
const DISPATCH_OVERHEAD_SECONDS: f64 = 1e-6;

/// Tabu search pays a longer schedule than plain SA per restart.
const TABU_SWEEPS: f64 = 1200.0;

/// Random sampling re-evaluates full energies per draw; ~10× SA's
/// per-variable work for the same budget.
const RANDOM_SWEEPS: f64 = 8000.0;

/// Floor for any predicted value: keeps expected-cost arithmetic (ratios,
/// divisions, DRR integer conversion) away from zero.
pub const MIN_PREDICTED_SECONDS: f64 = 1e-9;

/// Ceiling for any predicted value: keeps a runaway ratio or a zero
/// success rate from producing unusable infinities (also the cap on
/// backlog-derived retry hints).
pub const MAX_PREDICTED_SECONDS: f64 = 3600.0;

/// A backend is never priced as succeeding less often than this — a
/// consistently failing backend gets expensive (20×), not infinitely so,
/// matching the "never degrade to zero" routing rule.
const MIN_SUCCESS_RATE: f64 = 0.05;

/// EWMA smoothing factor for calibration: each new observation carries
/// 20% weight (matches the portfolio's latency EWMA).
const ALPHA: f64 = 0.2;

/// EWMA smoothing factor for the *routing* calibration channel: slower
/// than [`ALPHA`] so a burst of contended measurements cannot swing a
/// routing decision that a steady signal would not.
const ROUTING_ALPHA: f64 = 0.1;

/// Quantization base for the routing multiplier: per-backend calibration
/// enters routing as `16^k` for integer `k`, so only a sustained ≥4×
/// *relative* deviation (half a base-16 decade) from the fleet-wide
/// common mode changes a route.
const ROUTING_QUANT_BASE: f64 = 16.0;

/// Exponent clamp for the routing multiplier: at most `16^±2` (256× in
/// either direction), enough for a grossly mispredicted backend to lose
/// every route it should lose, bounded so a runaway ratio cannot price a
/// backend into (or out of) infinity.
const ROUTING_EXP_CLAMP: i32 = 2;

/// Clamps a predicted/expected value into the representable band,
/// mapping NaN (0/0 arithmetic on pathological inputs) to the ceiling.
fn clamp_seconds(x: f64) -> f64 {
    if x.is_nan() {
        MAX_PREDICTED_SECONDS
    } else {
        x.clamp(MIN_PREDICTED_SECONDS, MAX_PREDICTED_SECONDS)
    }
}

/// The problem-shape inputs the analytic estimators consume.
///
/// Routing decisions that happen before compilation (admission, DRR
/// charging) only know the variable count and use
/// [`CostShape::from_n_vars`], which assumes the bounded coupling degree
/// the presolve typically leaves behind. Decisions made after compilation
/// (racing inside a worker) pass the compiled model's real
/// [`qdm_qubo::compiled::CompiledQubo::avg_degree`] via
/// [`CostShape::with_degree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostShape {
    /// Number of decision variables.
    pub n_vars: usize,
    /// Mean coupling degree per variable (neighbors touched per flip).
    pub avg_degree: f64,
}

impl CostShape {
    /// Shape from a variable count alone, with the default degree
    /// assumption `min(n_vars - 1, 8)` — dense for tiny models, bounded
    /// for large ones.
    pub fn from_n_vars(n_vars: usize) -> Self {
        Self { n_vars, avg_degree: (n_vars.saturating_sub(1)).min(8) as f64 }
    }

    /// Shape with a measured average coupling degree (from the compiled
    /// CSR).
    pub fn with_degree(n_vars: usize, avg_degree: f64) -> Self {
        Self { n_vars, avg_degree: avg_degree.max(0.0) }
    }
}

/// Cold-start analytic estimate, in **seconds**, of solving a
/// `shape`-shaped model on `spec`'s backend. This is the estimate online
/// calibration corrects; see the module docs for the family shapes.
///
/// The parallel-restart SA divides by the host's hardware threads
/// (restarts fan out across the machine; on a single-core host it
/// degrades to the serial curve and ties break by registration order,
/// which lists serial SA first).
pub fn analytic_seconds(spec: &SolverSpec, shape: CostShape) -> f64 {
    let n = shape.n_vars as f64;
    // Degree enters as "work per sweep position"; at least 1 so an empty
    // coupling matrix still costs the linear pass.
    let degree = shape.avg_degree.max(1.0);
    let sweep_work = n * degree * COUPLING_EVAL_SECONDS;
    let estimate = match spec.kind {
        SolverKind::GateBased => (n.min(30.0)).exp2() * GATE_STATE_SECONDS,
        SolverKind::Annealing if spec.name.contains("adiabatic") => {
            (n.min(30.0)).exp2() * GATE_STATE_SECONDS
        }
        SolverKind::Annealing if spec.name.ends_with("-parallel") => {
            // The parallelism probe is a syscall on Linux, so cache it —
            // the estimator runs per eligible backend on every routing
            // decision.
            static HW_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
            let hw = *HW_THREADS
                .get_or_init(|| std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1));
            DEFAULT_SWEEPS * sweep_work / hw as f64
        }
        SolverKind::Annealing => DEFAULT_SWEEPS * sweep_work,
        SolverKind::Classical if spec.name == "exact" => (n.min(40.0)).exp2() * EXACT_STATE_SECONDS,
        SolverKind::Classical if spec.name == "random" => RANDOM_SWEEPS * sweep_work,
        SolverKind::Classical => TABU_SWEEPS * sweep_work,
    };
    clamp_seconds(DISPATCH_OVERHEAD_SECONDS + estimate)
}

/// Per-backend calibration state, snapshot via [`CostModel::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationStats {
    /// Completed solves observed (successes).
    pub observations: u64,
    /// EWMA of `observed_seconds / analytic_seconds`; meaningless until
    /// the first observation — read it through
    /// [`CalibrationStats::ratio`].
    pub ewma_ratio: f64,
    /// Completed solves (the numerator of the success rate).
    pub successes: u64,
    /// Failures attributed to this backend (panics, injected faults,
    /// exhausted retries).
    pub failures: u64,
    /// EWMA of the prediction in force when each observation arrived.
    pub ewma_predicted_seconds: f64,
    /// EWMA of observed solve seconds (the calibration target).
    pub ewma_actual_seconds: f64,
    /// EWMA of the symmetric error factor
    /// `max(predicted/actual, actual/predicted)`; 1.0 is a perfect
    /// estimator, 2.0 means predictions are off by 2× in either
    /// direction.
    pub ewma_error_factor: f64,
}

impl CalibrationStats {
    /// The calibration ratio to multiply an analytic estimate by: 1.0
    /// (trust the analytic curve) until the first observation.
    pub fn ratio(&self) -> f64 {
        if self.observations == 0 {
            1.0
        } else {
            self.ewma_ratio
        }
    }

    /// Observed success rate, clamped to `MIN_SUCCESS_RATE`; 1.0 when
    /// nothing has been observed (no evidence of unreliability yet).
    pub fn success_rate(&self) -> f64 {
        let total = self.successes + self.failures;
        if total == 0 {
            1.0
        } else {
            (self.successes as f64 / total as f64).max(MIN_SUCCESS_RATE)
        }
    }
}

/// Interior state of the [`CostModel`]: the public per-backend
/// [`CalibrationStats`] plus the routing channel's log-space EWMAs.
struct ModelState {
    slots: Vec<CalibrationStats>,
    /// Per-backend EWMA of `log16(observed / analytic)`; `None` until the
    /// backend's first observation.
    routing_log_ratio: Vec<Option<f64>>,
    /// Fleet-wide EWMA of the same quantity over *every* observation —
    /// the environment's common-mode factor (a slow host, a debug build,
    /// a contended core slow every backend roughly equally).
    global_log_ratio: Option<f64>,
}

/// The online-calibrated cost model: one [`CalibrationStats`] slot per
/// registered backend, indexed like the registry. Owned by the
/// [`crate::portfolio::PortfolioScheduler`] so routing feedback
/// ([`crate::portfolio::PortfolioScheduler::record`]) calibrates
/// predictions in the same breath as it updates latency telemetry.
///
/// The model exposes two read channels with different noise tolerances:
///
/// - **Quotes** ([`CostModel::predict_seconds`],
///   [`CostModel::expected_seconds`]) scale the analytic estimate by the
///   raw calibration ratio. Consumers — admission buckets, DRR charges,
///   shed hints, metrics — meter *aggregate* work, where measurement
///   jitter averages out harmlessly.
/// - **Routing** ([`CostModel::expected_routing_seconds`]) compares
///   backends against each other, where jitter is poison: a single
///   contended measurement must not flip which backend wins a route, or
///   identical job streams replay differently (breaking the crash-safe
///   runtime's deterministic-recovery guarantee). Routing therefore reads
///   calibration as each backend's deviation from the fleet-wide
///   common-mode ratio, quantized to powers of `ROUTING_QUANT_BASE`:
///   uniform slowness cancels out entirely, and only a sustained ≥4×
///   relative miscalibration moves a backend across a quantization
///   boundary and changes a route.
pub struct CostModel {
    state: Mutex<ModelState>,
}

impl CostModel {
    /// A model tracking `n_backends` backends, all uncalibrated.
    pub fn new(n_backends: usize) -> Self {
        Self {
            state: Mutex::new(ModelState {
                slots: vec![CalibrationStats::default(); n_backends],
                routing_log_ratio: vec![None; n_backends],
                global_log_ratio: None,
            }),
        }
    }

    /// Calibrated latency prediction: the analytic estimate scaled by the
    /// backend's observed ratio. Clamped to
    /// [`MIN_PREDICTED_SECONDS`]..=[`MAX_PREDICTED_SECONDS`].
    pub fn predict_seconds(&self, backend: usize, analytic_seconds: f64) -> f64 {
        let state = self.state.lock_unpoisoned();
        clamp_seconds(analytic_seconds * state.slots[backend].ratio())
    }

    /// Reliability-priced expected cost: predicted seconds ÷ success rate
    /// ÷ `capacity`. `capacity` is the breaker-state discount in (0, 1]
    /// (see [`crate::breaker`]); pass 1.0 when breakers are disabled.
    pub fn expected_seconds(&self, backend: usize, analytic_seconds: f64, capacity: f64) -> f64 {
        let state = self.state.lock_unpoisoned();
        let s = &state.slots[backend];
        let predicted = analytic_seconds * s.ratio();
        clamp_seconds(predicted / s.success_rate() / capacity.clamp(1e-3, 1.0))
    }

    /// The routing channel's calibration multiplier for `backend`:
    /// `16^k` where `k` is the backend's log-ratio deviation from the
    /// fleet common mode, rounded to the nearest integer and clamped to
    /// ±`ROUTING_EXP_CLAMP`. 1.0 while the backend (or the fleet) is
    /// unobserved, and *exactly* 1.0 whenever only one backend has been
    /// observed — a backend cannot deviate from a common mode it defines
    /// alone.
    pub fn routing_multiplier(&self, backend: usize) -> f64 {
        let state = self.state.lock_unpoisoned();
        Self::routing_multiplier_locked(&state, backend)
    }

    fn routing_multiplier_locked(state: &ModelState, backend: usize) -> f64 {
        match (state.routing_log_ratio[backend], state.global_log_ratio) {
            (Some(own), Some(fleet)) => {
                let exp = (own - fleet).round() as i32;
                ROUTING_QUANT_BASE.powi(exp.clamp(-ROUTING_EXP_CLAMP, ROUTING_EXP_CLAMP))
            }
            _ => 1.0,
        }
    }

    /// Routing-priced expected cost: analytic seconds ×
    /// [`CostModel::routing_multiplier`] ÷ success rate ÷ `capacity`.
    /// This is the value backends are *compared* on — quantized so that
    /// measurement jitter (and uniform environment slowness) can never
    /// flip a route, keeping routing deterministic for a given job/outcome
    /// sequence. Success rate and breaker capacity are themselves
    /// deterministic functions of that sequence, so they enter raw.
    pub fn expected_routing_seconds(
        &self,
        backend: usize,
        analytic_seconds: f64,
        capacity: f64,
    ) -> f64 {
        let state = self.state.lock_unpoisoned();
        let predicted = analytic_seconds * Self::routing_multiplier_locked(&state, backend);
        let s = &state.slots[backend];
        clamp_seconds(predicted / s.success_rate() / capacity.clamp(1e-3, 1.0))
    }

    /// Feeds one completed solve back: `analytic_seconds` is the estimate
    /// for the job's shape, `actual_seconds` the observed solve time. The
    /// first observation seeds every EWMA; the error factor is measured
    /// against the prediction that was *in force before* this observation
    /// updated the ratio.
    pub fn observe(&self, backend: usize, analytic_seconds: f64, actual_seconds: f64) {
        let analytic = analytic_seconds.max(MIN_PREDICTED_SECONDS);
        let actual = actual_seconds.max(MIN_PREDICTED_SECONDS);
        let mut state = self.state.lock_unpoisoned();
        let s = &mut state.slots[backend];
        let predicted = clamp_seconds(analytic * s.ratio());
        let ratio = actual / analytic;
        let error = (predicted / actual).max(actual / predicted);
        if s.observations == 0 {
            s.ewma_ratio = ratio;
            s.ewma_predicted_seconds = predicted;
            s.ewma_actual_seconds = actual;
            s.ewma_error_factor = error;
        } else {
            s.ewma_ratio = (1.0 - ALPHA) * s.ewma_ratio + ALPHA * ratio;
            s.ewma_predicted_seconds = (1.0 - ALPHA) * s.ewma_predicted_seconds + ALPHA * predicted;
            s.ewma_actual_seconds = (1.0 - ALPHA) * s.ewma_actual_seconds + ALPHA * actual;
            s.ewma_error_factor = (1.0 - ALPHA) * s.ewma_error_factor + ALPHA * error;
        }
        s.observations += 1;
        s.successes += 1;
        // Routing channel: the same observation in log16 space, folded
        // into both the backend's own EWMA and the fleet common mode.
        let log_ratio = ratio.log2() / ROUTING_QUANT_BASE.log2();
        let own = &mut state.routing_log_ratio[backend];
        *own = Some(match *own {
            None => log_ratio,
            Some(prev) => (1.0 - ROUTING_ALPHA) * prev + ROUTING_ALPHA * log_ratio,
        });
        state.global_log_ratio = Some(match state.global_log_ratio {
            None => log_ratio,
            Some(prev) => (1.0 - ROUTING_ALPHA) * prev + ROUTING_ALPHA * log_ratio,
        });
    }

    /// Records a failure attributed to `backend`: lowers its success rate
    /// so its expected cost rises, without touching latency calibration
    /// (a failed attempt's duration says nothing about a successful
    /// one's).
    pub fn observe_failure(&self, backend: usize) {
        let mut state = self.state.lock_unpoisoned();
        state.slots[backend].failures += 1;
    }

    /// Snapshot of per-backend calibration state, indexed like the
    /// registry.
    pub fn stats(&self) -> Vec<CalibrationStats> {
        self.state.lock_unpoisoned().slots.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SolverRegistry;

    fn spec_of(reg: &SolverRegistry, name: &str) -> SolverSpec {
        reg.get(reg.find(name).expect("registered")).spec.clone()
    }

    #[test]
    fn parallel_sa_estimate_is_competitive_with_serial() {
        let reg = SolverRegistry::standard();
        let par = spec_of(&reg, "simulated-annealing-parallel");
        let sa = spec_of(&reg, "simulated-annealing");
        // Never costlier than serial SA; strictly cheaper on multi-core.
        for n in [32usize, 128, 1024] {
            let shape = CostShape::from_n_vars(n);
            assert!(analytic_seconds(&par, shape) <= analytic_seconds(&sa, shape));
        }
    }

    #[test]
    fn estimates_prefer_heuristics_at_scale() {
        let reg = SolverRegistry::standard();
        let sa = spec_of(&reg, "simulated-annealing");
        let exact = spec_of(&reg, "exact");
        // Small models: exact enumeration is cheap enough to win.
        assert!(
            analytic_seconds(&exact, CostShape::from_n_vars(6))
                < analytic_seconds(&sa, CostShape::from_n_vars(6))
        );
        // Large models: exponential enumeration must lose.
        assert!(
            analytic_seconds(&exact, CostShape::from_n_vars(25))
                > analytic_seconds(&sa, CostShape::from_n_vars(25))
        );
    }

    #[test]
    fn degree_scales_annealing_but_not_enumeration() {
        let reg = SolverRegistry::standard();
        let sa = spec_of(&reg, "simulated-annealing");
        let exact = spec_of(&reg, "exact");
        let sparse = CostShape::with_degree(64, 2.0);
        let dense = CostShape::with_degree(64, 32.0);
        assert!(analytic_seconds(&sa, sparse) < analytic_seconds(&sa, dense));
        assert_eq!(analytic_seconds(&exact, sparse), analytic_seconds(&exact, dense));
    }

    #[test]
    fn calibration_ratio_seeds_then_tracks() {
        let model = CostModel::new(2);
        // Uncalibrated: the analytic estimate passes through.
        assert_eq!(model.predict_seconds(0, 0.5), 0.5);
        // One observation: the backend ran 4× slower than the curve says.
        model.observe(0, 0.5, 2.0);
        assert!((model.predict_seconds(0, 0.5) - 2.0).abs() < 1e-12);
        // Predictions extrapolate by shape: a 2×-analytic job predicts 2×.
        assert!((model.predict_seconds(0, 1.0) - 4.0).abs() < 1e-12);
        // The other backend is untouched.
        assert_eq!(model.predict_seconds(1, 0.5), 0.5);
    }

    #[test]
    fn failures_raise_expected_cost_without_touching_latency() {
        let model = CostModel::new(1);
        model.observe(0, 1.0, 1.0);
        let healthy = model.expected_seconds(0, 1.0, 1.0);
        model.observe_failure(0);
        let flaky = model.expected_seconds(0, 1.0, 1.0);
        // 1 success, 1 failure → success rate 0.5 → cost doubles.
        assert!((flaky - healthy * 2.0).abs() < 1e-9);
        // Latency prediction itself is unchanged.
        assert!((model.predict_seconds(0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn success_rate_and_capacity_floors_keep_costs_finite() {
        let model = CostModel::new(1);
        model.observe(0, 1.0, 1.0);
        for _ in 0..10_000 {
            model.observe_failure(0);
        }
        let cost = model.expected_seconds(0, 1.0, 0.0);
        assert!(cost.is_finite());
        assert!(cost <= MAX_PREDICTED_SECONDS);
        // And the clamp floor holds on the other end.
        assert!(model.expected_seconds(0, 0.0, 1.0) >= MIN_PREDICTED_SECONDS);
    }

    #[test]
    fn routing_multiplier_is_unity_for_a_lone_observed_backend() {
        let model = CostModel::new(2);
        assert_eq!(model.routing_multiplier(0), 1.0, "cold fleet");
        // However badly the analytic curve misses, one backend *is* the
        // common mode: its deviation is identically zero, so routing
        // stays purely analytic (and deterministic).
        for _ in 0..20 {
            model.observe(0, 1e-6, 1e-3);
        }
        assert_eq!(model.routing_multiplier(0), 1.0);
        assert_eq!(model.routing_multiplier(1), 1.0, "unobserved peer");
        // The quote channel, by contrast, tracks the raw 1000× ratio.
        assert!(model.predict_seconds(0, 1e-6) > 1e-4);
    }

    #[test]
    fn routing_multiplier_cancels_common_mode_slowness() {
        let model = CostModel::new(2);
        // Both backends run 20× over their analytic curves (a debug build,
        // a slow host): that is environment, not miscalibration, and must
        // not reprice either backend relative to the other.
        for _ in 0..20 {
            model.observe(0, 1e-6, 2e-5);
            model.observe(1, 1e-3, 2e-2);
        }
        assert_eq!(model.routing_multiplier(0), 1.0);
        assert_eq!(model.routing_multiplier(1), 1.0);
    }

    #[test]
    fn routing_multiplier_quantizes_sustained_relative_deviation() {
        let model = CostModel::new(2);
        // Backend 0 runs 256× over its curve, backend 1 on-curve: a
        // genuine relative miscalibration. The deviation is ±half the
        // log-distance (the common mode sits between them), quantized to
        // the nearest power of 16: 16 and 1/16.
        for _ in 0..50 {
            model.observe(0, 1e-6, 2.56e-4);
            model.observe(1, 1e-3, 1e-3);
        }
        assert_eq!(model.routing_multiplier(0), 16.0);
        assert_eq!(model.routing_multiplier(1), 1.0 / 16.0);
        // And the multiplier is clamped: an astronomically mispredicted
        // backend is priced up at most 256×.
        let extreme = CostModel::new(2);
        for _ in 0..50 {
            extreme.observe(0, 1e-9, 1e3);
            extreme.observe(1, 1e-3, 1e-3);
        }
        assert_eq!(extreme.routing_multiplier(0), 256.0);
        assert_eq!(extreme.routing_multiplier(1), 1.0 / 256.0);
    }

    #[test]
    fn error_factor_is_symmetric_and_seeded() {
        let model = CostModel::new(1);
        // First observation: prediction in force was the analytic 1.0,
        // actual 4.0 → error factor 4.
        model.observe(0, 1.0, 4.0);
        let s = &model.stats()[0];
        assert!((s.ewma_error_factor - 4.0).abs() < 1e-9);
        assert!((s.ewma_predicted_seconds - 1.0).abs() < 1e-12);
        assert!((s.ewma_actual_seconds - 4.0).abs() < 1e-12);
        // Now calibrated at ratio 4: a matching observation has error 1,
        // and the EWMA moves toward it.
        model.observe(0, 1.0, 4.0);
        let s = &model.stats()[0];
        assert!(s.ewma_error_factor < 4.0);
        assert!(s.ewma_error_factor >= 1.0);
    }
}
