//! Deterministic fair scheduling for the service queue: priority lanes with
//! pop-counted aging and per-session subqueues served deficit-round-robin.
//!
//! The original `JobQueues` (one FIFO per priority lane, drained strictly
//! High → Normal → Low) had two live scheduling bugs this module fixes:
//!
//! 1. **Priority starvation** — `pop()` drained lanes strictly
//!    highest-first, so sustained High traffic starved the Low lane forever.
//!    Now every pop that serves a lane while a *lower* lane has waiting jobs
//!    ages the bypassed lane by one; once a lane has been passed over
//!    [`AGE_AFTER_POPS`] times, its next job is served regardless of
//!    higher-priority pressure, and its age restarts. The aging clock is
//!    pops, not wall time, so schedules are reproducible: under sustained
//!    High submissions the job at the head of the Low lane is served within
//!    `AGE_AFTER_POPS + 1` pops, and a backlogged lane is guaranteed
//!    `1/(AGE_AFTER_POPS + 1)` of pop bandwidth.
//! 2. **Session monopoly** — all sessions shared one FIFO per lane, so a
//!    single session with a deep queue monopolized every worker. Each lane
//!    now keeps one subqueue per [`crate::submit::Session`] and serves them
//!    deficit-round-robin: each rotation grants a subqueue [`DRR_QUANTUM`]
//!    credit, and serving a job spends credit equal to the job's cost (its
//!    **predicted solve time in microseconds**, quoted by the calibrated
//!    cost model — see [`crate::cost`]), so a session submitting many or
//!    expensive jobs interleaves fairly with light ones instead of
//!    walling them off: fairness meters seconds of backend time, not job
//!    counts or raw variable counts. This
//!    also subsumes the work-stealing item from the ROADMAP: an idle worker
//!    pops from whichever session has queued work — there is no per-worker
//!    queue to steal from in the first place.
//!
//! [`SchedulerPolicy::StrictPriority`] keeps the original
//! drain-highest-first single-FIFO behavior, both for deployments that
//! genuinely want strict lanes (and accept starvation) and as the baseline
//! the `runtime/fairness` bench measures the long-tail latency gap against.
//!
//! Everything here is driven under the service's single queue mutex; the
//! scheduler itself holds no locks and no clocks, so a fixed sequence of
//! `push`/`pop`/`remove` calls always yields the same job order.

use crate::service::QueuedJob;
use qdm_core::pipeline::JobPriority;
use std::collections::VecDeque;

/// How many pops a non-empty lane tolerates being bypassed by
/// higher-priority lanes before its next job is served unconditionally.
/// Counted in pops — never wall-clock — so scheduling stays deterministic.
pub const AGE_AFTER_POPS: u64 = 16;

/// Credit (in units of job cost — predicted microseconds of backend
/// time) a session's subqueue earns each time the deficit-round-robin
/// rotation passes over it. Costs far above the quantum are handled by
/// the arithmetic stall-lap fast-forward in the DRR loop, so a small
/// quantum keeps cheap-job interleaving tight without making expensive
/// jobs slow to schedule.
pub const DRR_QUANTUM: u64 = 16;

/// Which queueing discipline the service runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Priority lanes with deterministic aging (no lane starves) and
    /// per-session deficit-round-robin inside each lane (no session
    /// monopolizes the pool). The default.
    #[default]
    FairShare,
    /// The legacy discipline: one FIFO per lane, drained strictly
    /// High → Normal → Low with no aging and no per-session fairness.
    /// Sustained High traffic starves Low forever and one deep session
    /// walls off the others; kept for comparison and for callers that
    /// explicitly want strict lanes.
    StrictPriority,
}

/// The service queue under either [`SchedulerPolicy`], maintaining a
/// running total of the queued jobs' predicted cost. Every enqueue path
/// (submission, retry re-queue, migration, failover drain, recovery
/// replay) funnels through [`JobScheduler::push`]/[`JobScheduler::pop`],
/// so the backlog gauge survives cross-shard job movement without any
/// caller-side bookkeeping.
pub(crate) struct JobScheduler {
    inner: SchedulerImpl,
    /// Sum of queued jobs' [`QueuedJob::cost`] (predicted microseconds of
    /// backend time): the estimated seconds of work sitting in this
    /// queue, which load shedding and `retry_after_hint` are derived
    /// from.
    backlog_micros: u64,
}

enum SchedulerImpl {
    Fair(FairScheduler),
    Strict(StrictQueues),
}

impl JobScheduler {
    pub(crate) fn new(policy: SchedulerPolicy) -> Self {
        let inner = match policy {
            SchedulerPolicy::FairShare => SchedulerImpl::Fair(FairScheduler::new()),
            SchedulerPolicy::StrictPriority => SchedulerImpl::Strict(StrictQueues::new()),
        };
        Self { inner, backlog_micros: 0 }
    }

    pub(crate) fn push(&mut self, job: QueuedJob) {
        self.backlog_micros = self.backlog_micros.saturating_add(job.cost);
        match &mut self.inner {
            SchedulerImpl::Fair(s) => s.push(job),
            SchedulerImpl::Strict(s) => s.push(job),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedJob> {
        let job = match &mut self.inner {
            SchedulerImpl::Fair(s) => s.pop(),
            SchedulerImpl::Strict(s) => s.pop(),
        };
        if let Some(job) = &job {
            self.backlog_micros = self.backlog_micros.saturating_sub(job.cost);
        }
        job
    }

    /// Removes a queued job by id (for cancellation); `None` if a worker
    /// already picked it up or it never existed.
    pub(crate) fn remove(&mut self, id: u64) -> Option<QueuedJob> {
        let job = match &mut self.inner {
            SchedulerImpl::Fair(s) => s.remove(id),
            SchedulerImpl::Strict(s) => s.remove(id),
        };
        if let Some(job) = &job {
            self.backlog_micros = self.backlog_micros.saturating_sub(job.cost);
        }
        job
    }

    /// Predicted microseconds of backend time currently queued.
    pub(crate) fn backlog_micros(&self) -> u64 {
        self.backlog_micros
    }
}

/// High → 0, Normal → 1, Low → 2: pop order.
fn lane_index(priority: JobPriority) -> usize {
    match priority {
        JobPriority::High => 0,
        JobPriority::Normal => 1,
        JobPriority::Low => 2,
    }
}

/// One session's FIFO within a lane, with its deficit-round-robin credit.
struct SessionQueue {
    session: u64,
    deficit: u64,
    jobs: VecDeque<QueuedJob>,
}

/// One priority lane: the round-robin rotation of per-session subqueues
/// (front = currently served) plus the lane's aging counter. Subqueues are
/// never empty — a drained session leaves the rotation (and its credit)
/// until it submits again, the standard DRR rule that keeps idle sessions
/// from banking unbounded credit.
struct Lane {
    sessions: VecDeque<SessionQueue>,
    /// Pops served from higher-priority lanes while this lane had jobs
    /// waiting; reset every time this lane is served.
    passed_over: u64,
}

impl Lane {
    fn new() -> Self {
        Self { sessions: VecDeque::new(), passed_over: 0 }
    }

    fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    fn push(&mut self, job: QueuedJob) {
        let session = job.session.id();
        match self.sessions.iter_mut().find(|sq| sq.session == session) {
            Some(sq) => sq.jobs.push_back(job),
            None => {
                let mut jobs = VecDeque::new();
                jobs.push_back(job);
                self.sessions.push_back(SessionQueue { session, deficit: 0, jobs });
            }
        }
    }

    /// Deficit-round-robin pickup: the front subqueue serves jobs while its
    /// credit covers their cost, then rotates to the back with
    /// [`DRR_QUANTUM`] fresh credit. When a whole lap grants every session
    /// a quantum and still nobody can afford their head job (huge models),
    /// the remaining stall laps are fast-forwarded arithmetically — a
    /// uniform `k × DRR_QUANTUM` top-up for the minimal `k` that unblocks
    /// someone — so a pop costs O(sessions), never O(cost / quantum)
    /// rotations, while the whole lane sits under the service queue mutex.
    fn pop_drr(&mut self) -> Option<QueuedJob> {
        loop {
            for _ in 0..self.sessions.len() {
                let front = self.sessions.front_mut()?;
                let cost = front.jobs.front().expect("subqueues are never empty").cost;
                if front.deficit >= cost {
                    front.deficit -= cost;
                    let job = front.jobs.pop_front().expect("nonempty");
                    if front.jobs.is_empty() {
                        self.sessions.pop_front();
                    }
                    return Some(job);
                }
                let mut rotated = self.sessions.pop_front().expect("front exists");
                rotated.deficit = rotated.deficit.saturating_add(DRR_QUANTUM);
                self.sessions.push_back(rotated);
            }
            self.sessions.front()?;
            // A full unproductive lap: grant every session the minimal
            // number of whole laps' credit that makes some head affordable
            // (0 when the lap's own grants already unblocked one).
            let stall_laps = self
                .sessions
                .iter()
                .map(|sq| {
                    let cost = sq.jobs.front().expect("subqueues are never empty").cost;
                    cost.saturating_sub(sq.deficit).div_ceil(DRR_QUANTUM)
                })
                .min()
                .expect("lane has sessions");
            if stall_laps > 0 {
                for sq in &mut self.sessions {
                    sq.deficit = sq.deficit.saturating_add(stall_laps * DRR_QUANTUM);
                }
            }
        }
    }

    fn remove(&mut self, id: u64) -> Option<QueuedJob> {
        for si in 0..self.sessions.len() {
            if let Some(pos) = self.sessions[si].jobs.iter().position(|job| job.id == id) {
                let job = self.sessions[si].jobs.remove(pos).expect("position exists");
                if self.sessions[si].jobs.is_empty() {
                    self.sessions.remove(si);
                }
                if self.sessions.is_empty() {
                    // An emptied lane has nobody waiting: its age must not
                    // leak onto a job pushed much later, or that job would
                    // be served "pre-aged" without the documented
                    // AGE_AFTER_POPS bypasses ever happening.
                    self.passed_over = 0;
                }
                return Some(job);
            }
        }
        None
    }
}

/// The fair scheduler: three aged lanes of per-session DRR subqueues.
pub(crate) struct FairScheduler {
    lanes: [Lane; 3],
}

impl FairScheduler {
    pub(crate) fn new() -> Self {
        Self { lanes: [Lane::new(), Lane::new(), Lane::new()] }
    }

    pub(crate) fn push(&mut self, job: QueuedJob) {
        self.lanes[lane_index(job.spec.options.priority)].push(job);
    }

    /// Serves the highest-priority lane whose age reached
    /// [`AGE_AFTER_POPS`], else the highest-priority non-empty lane; then
    /// ages every non-empty lane below the one served.
    pub(crate) fn pop(&mut self) -> Option<QueuedJob> {
        let aged = (0..3)
            .find(|&l| !self.lanes[l].is_empty() && self.lanes[l].passed_over >= AGE_AFTER_POPS);
        let serve = aged.or_else(|| (0..3).find(|&l| !self.lanes[l].is_empty()))?;
        let job = self.lanes[serve].pop_drr().expect("non-empty lane yields a job");
        self.lanes[serve].passed_over = 0;
        for lane in self.lanes.iter_mut().skip(serve + 1) {
            if !lane.is_empty() {
                lane.passed_over += 1;
            }
        }
        Some(job)
    }

    pub(crate) fn remove(&mut self, id: u64) -> Option<QueuedJob> {
        self.lanes.iter_mut().find_map(|lane| lane.remove(id))
    }
}

/// The legacy strict-priority queue: one FIFO per lane, popped
/// highest-priority-first with no aging and no per-session fairness.
pub(crate) struct StrictQueues {
    lanes: [VecDeque<QueuedJob>; 3],
}

impl StrictQueues {
    pub(crate) fn new() -> Self {
        Self { lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()] }
    }

    pub(crate) fn push(&mut self, job: QueuedJob) {
        self.lanes[lane_index(job.spec.options.priority)].push_back(job);
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedJob> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }

    pub(crate) fn remove(&mut self, id: u64) -> Option<QueuedJob> {
        for lane in &mut self.lanes {
            if let Some(pos) = lane.iter().position(|job| job.id == id) {
                return lane.remove(pos);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::CompletionSlot;
    use crate::service::{JobSpec, SharedProblem};
    use crate::submit::SessionCore;
    use qdm_core::problem::{Decoded, DmProblem};
    use qdm_qubo::model::QuboModel;
    use std::sync::Arc;

    struct Dummy {
        n: usize,
    }

    impl DmProblem for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }
        fn n_vars(&self) -> usize {
            self.n
        }
        fn to_qubo(&self) -> QuboModel {
            QuboModel::new(self.n)
        }
        fn decode(&self, bits: &[bool]) -> Decoded {
            Decoded { feasible: true, objective: 0.0, summary: format!("{bits:?}") }
        }
    }

    fn session(id: u64) -> Arc<SessionCore> {
        Arc::new(SessionCore::new(id, 1024, 1024))
    }

    fn job(id: u64, session: &Arc<SessionCore>, priority: JobPriority, n_vars: usize) -> QueuedJob {
        let problem: SharedProblem = Arc::new(Dummy { n: n_vars });
        QueuedJob {
            id,
            cost: n_vars.max(1) as u64,
            queued_ns: 0,
            spec: JobSpec::new(problem, id).with_priority(priority),
            slot: Arc::new(CompletionSlot::new()),
            session: Arc::clone(session),
            route: None,
            retry: None,
            recovered: false,
        }
    }

    fn pop_ids(sched: &mut JobScheduler) -> Vec<u64> {
        let mut ids = Vec::new();
        while let Some(job) = sched.pop() {
            ids.push(job.id);
        }
        ids
    }

    #[test]
    fn strict_policy_preserves_legacy_lane_order() {
        let mut sched = JobScheduler::new(SchedulerPolicy::StrictPriority);
        let s = session(0);
        sched.push(job(0, &s, JobPriority::Normal, 4));
        sched.push(job(1, &s, JobPriority::High, 4));
        sched.push(job(2, &s, JobPriority::Low, 4));
        sched.push(job(3, &s, JobPriority::Normal, 4));
        assert_eq!(pop_ids(&mut sched), vec![1, 0, 3, 2]);
        assert!(sched.pop().is_none());
    }

    #[test]
    fn aged_low_job_is_served_within_the_bound_under_sustained_high_traffic() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let s = session(0);
        for id in 0..100 {
            sched.push(job(id, &s, JobPriority::High, 4));
        }
        sched.push(job(1000, &s, JobPriority::Low, 4));
        let ids = pop_ids(&mut sched);
        // Exactly AGE_AFTER_POPS High pops bypass the Low lane, then its
        // head is forced — the concrete starvation bound.
        assert_eq!(ids[AGE_AFTER_POPS as usize], 1000, "order: {ids:?}");
        assert!(ids[..AGE_AFTER_POPS as usize].iter().all(|&id| id < 100));
    }

    #[test]
    fn low_lane_receives_periodic_bandwidth_not_a_single_pop() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let s = session(0);
        for id in 0..100 {
            sched.push(job(id, &s, JobPriority::High, 4));
        }
        for id in [1000, 1001, 1002] {
            sched.push(job(id, &s, JobPriority::Low, 4));
        }
        let ids = pop_ids(&mut sched);
        let step = AGE_AFTER_POPS as usize;
        // One Low job every AGE_AFTER_POPS + 1 pops: the lane's guaranteed
        // 1/(AGE_AFTER_POPS + 1) share.
        assert_eq!(ids[step], 1000, "order: {ids:?}");
        assert_eq!(ids[2 * step + 1], 1001, "order: {ids:?}");
        assert_eq!(ids[3 * step + 2], 1002, "order: {ids:?}");
    }

    #[test]
    fn aging_escalates_normal_before_low() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let s = session(0);
        for id in 0..60 {
            sched.push(job(id, &s, JobPriority::High, 4));
        }
        sched.push(job(500, &s, JobPriority::Normal, 4));
        sched.push(job(1000, &s, JobPriority::Low, 4));
        let ids = pop_ids(&mut sched);
        // Both lower lanes age together under the High flood; when the
        // threshold trips, the higher-priority starved lane goes first and
        // the Low lane (one pass older now) follows immediately.
        assert_eq!(ids[AGE_AFTER_POPS as usize], 500, "order: {ids:?}");
        assert_eq!(ids[AGE_AFTER_POPS as usize + 1], 1000, "order: {ids:?}");
    }

    #[test]
    fn sessions_in_one_lane_interleave_round_robin() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let (a, b) = (session(1), session(2));
        for id in 0..10 {
            sched.push(job(id, &a, JobPriority::Normal, 6));
        }
        sched.push(job(100, &b, JobPriority::Normal, 6));
        sched.push(job(101, &b, JobPriority::Normal, 6));
        let ids = pop_ids(&mut sched);
        // DRR_QUANTUM = 16 credit buys two 6-cost jobs per turn: session A
        // serves two, then session B drains both of its jobs — B is done by
        // the fourth pop despite A's ten-deep head start.
        assert_eq!(&ids[..4], &[0, 1, 100, 101], "order: {ids:?}");
        assert_eq!(&ids[4..], &[2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn expensive_jobs_do_not_wall_off_a_cheap_session() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let (big, small) = (session(1), session(2));
        for id in 0..3 {
            sched.push(job(id, &big, JobPriority::Normal, 32));
        }
        for id in 100..110 {
            sched.push(job(id, &small, JobPriority::Normal, 2));
        }
        let ids = pop_ids(&mut sched);
        // A 32-cost job needs two rotations of credit; the 2-cost session
        // drains eight jobs on its first turn before the big one runs once.
        assert_eq!(&ids[..8], &(100..108).collect::<Vec<u64>>()[..], "order: {ids:?}");
        assert_eq!(ids.len(), 13);
    }

    #[test]
    fn remove_prunes_empty_subqueues_and_preserves_the_rest() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let (a, b) = (session(1), session(2));
        sched.push(job(0, &a, JobPriority::Normal, 4));
        sched.push(job(1, &a, JobPriority::Normal, 4));
        sched.push(job(2, &b, JobPriority::Low, 4));
        assert_eq!(sched.remove(1).map(|j| j.id), Some(1));
        assert!(sched.remove(1).is_none(), "a job can only be removed once");
        assert_eq!(sched.remove(2).map(|j| j.id), Some(2));
        assert_eq!(pop_ids(&mut sched), vec![0]);
        assert!(sched.pop().is_none());
        // The emptied structures accept new work.
        sched.push(job(3, &b, JobPriority::Low, 4));
        assert_eq!(pop_ids(&mut sched), vec![3]);
    }

    #[test]
    fn a_huge_cost_job_is_served_without_quantum_sized_spinning() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let s = session(0);
        // Cost far beyond one quantum: the stall laps must be
        // fast-forwarded arithmetically, and the job still pops.
        sched.push(job(0, &s, JobPriority::Normal, 100_000));
        sched.push(job(1, &s, JobPriority::Normal, 4));
        assert_eq!(pop_ids(&mut sched), vec![0, 1]);
        // A cheap session next to the huge one is served first and is
        // never starved by the big head's credit accrual.
        let (big, small) = (session(1), session(2));
        sched.push(job(10, &big, JobPriority::Normal, 100_000));
        sched.push(job(20, &small, JobPriority::Normal, 2));
        sched.push(job(21, &small, JobPriority::Normal, 2));
        let ids = pop_ids(&mut sched);
        assert_eq!(&ids[..2], &[20, 21], "cheap jobs go first: {ids:?}");
        assert_eq!(ids[2], 10);
    }

    #[test]
    fn emptying_a_lane_by_removal_resets_its_age() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let s = session(0);
        for id in 0..40 {
            sched.push(job(id, &s, JobPriority::High, 4));
        }
        sched.push(job(1000, &s, JobPriority::Low, 4));
        // Age the Low lane almost to the threshold, then cancel its only
        // job: the lane empties and its accumulated age must die with it.
        for _ in 0..AGE_AFTER_POPS - 1 {
            assert!(sched.pop().expect("High job").id < 100);
        }
        assert_eq!(sched.remove(1000).map(|j| j.id), Some(1000));
        // A fresh Low job starts from zero: it must survive the full
        // AGE_AFTER_POPS bypasses again, not be served "pre-aged".
        sched.push(job(2000, &s, JobPriority::Low, 4));
        let ids = pop_ids(&mut sched);
        assert_eq!(ids[AGE_AFTER_POPS as usize], 2000, "order: {ids:?}");
        assert!(ids[..AGE_AFTER_POPS as usize].iter().all(|&id| id < 100));
    }

    #[test]
    fn drr_meters_predicted_microseconds_so_a_cheap_session_is_never_walled_off() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let (heavy, light) = (session(1), session(2));
        // Costs are predicted microseconds: three ~50ms jobs against ten
        // ~0.5ms jobs. The currency is seconds of backend time, so the
        // light session's whole queue drains before one heavy job has
        // accrued the credit to run — few-expensive and many-cheap are
        // throttled by the same meter.
        for id in 0..3 {
            sched.push(job(id, &heavy, JobPriority::Normal, 50_000));
        }
        for id in 100..110 {
            sched.push(job(id, &light, JobPriority::Normal, 500));
        }
        let ids = pop_ids(&mut sched);
        assert_eq!(&ids[..10], &(100..110).collect::<Vec<u64>>()[..], "order: {ids:?}");
        assert_eq!(&ids[10..], &[0, 1, 2]);
    }

    #[test]
    fn backlog_tracks_pushes_pops_and_removals() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let s = session(0);
        assert_eq!(sched.backlog_micros(), 0);
        sched.push(job(0, &s, JobPriority::Normal, 1000));
        sched.push(job(1, &s, JobPriority::Normal, 250));
        assert_eq!(sched.backlog_micros(), 1250);
        assert_eq!(sched.remove(1).map(|j| j.id), Some(1));
        assert_eq!(sched.backlog_micros(), 1000);
        assert!(sched.pop().is_some());
        assert_eq!(sched.backlog_micros(), 0);
        assert!(sched.pop().is_none());
        // The strict policy meters the same backlog.
        let mut strict = JobScheduler::new(SchedulerPolicy::StrictPriority);
        strict.push(job(2, &s, JobPriority::High, 42));
        assert_eq!(strict.backlog_micros(), 42);
        assert!(strict.pop().is_some());
        assert_eq!(strict.backlog_micros(), 0);
    }

    #[test]
    fn fair_pop_drains_exactly_what_was_pushed() {
        let mut sched = JobScheduler::new(SchedulerPolicy::FairShare);
        let (a, b) = (session(1), session(2));
        let mut pushed = Vec::new();
        for id in 0..20 {
            let (s, priority) = match id % 4 {
                0 => (&a, JobPriority::High),
                1 => (&b, JobPriority::Normal),
                2 => (&a, JobPriority::Low),
                _ => (&b, JobPriority::High),
            };
            sched.push(job(id, s, priority, 1 + (id as usize % 7)));
            pushed.push(id);
        }
        let mut ids = pop_ids(&mut sched);
        ids.sort_unstable();
        assert_eq!(ids, pushed, "every pushed job pops exactly once");
        assert!(sched.pop().is_none());
    }
}
