//! The adaptive portfolio scheduler: decides which registered backend gets
//! each job.
//!
//! Routing is priced in **expected seconds** by the calibrated cost model
//! ([`crate::cost::CostModel`], owned here): each eligible backend's
//! analytic estimate ([`crate::cost::analytic_seconds`]) is scaled by its
//! observed calibration ratio, divided by its observed success rate and
//! its circuit-breaker capacity, then blended with an
//! exponentially-weighted moving average of energy quality (how far above
//! the model's naive lower bound the returned assignment landed, plus a
//! penalty for infeasible decodes). Backends that answer fast, reliably,
//! and well pull traffic; backends that stall, fail, or return poor
//! assignments shed it. This is the serving-tier half of the hybrid
//! orchestration the Zajac & Störl architecture calls for: classical
//! control choosing among quantum(-like) backends per request.

use crate::cost::{analytic_seconds, CostModel, CostShape};
use crate::registry::SolverRegistry;
use crate::sync::LockExt;
use std::sync::Mutex;

/// Live routing statistics for one backend.
#[derive(Debug, Clone, Default)]
pub struct BackendStats {
    /// Jobs routed here so far.
    pub observations: u64,
    /// EWMA of solve latency in seconds.
    pub ewma_latency: f64,
    /// EWMA of energy quality (0 = at the naive lower bound; higher is
    /// worse; infeasible decodes add a fixed penalty).
    pub ewma_quality: f64,
    /// Portfolio races this backend participated in.
    pub race_entries: u64,
    /// Races this backend won (best energy, ties to the higher-ranked
    /// participant).
    pub race_wins: u64,
}

/// EWMA smoothing factor: each new observation carries 20% weight.
const ALPHA: f64 = 0.2;

/// Extra quality penalty for an infeasible decoded assignment.
const INFEASIBLE_PENALTY: f64 = 4.0;

/// Weight of the quality term relative to expected cost when scoring.
const QUALITY_WEIGHT: f64 = 0.5;

/// The adaptive router.
pub struct PortfolioScheduler {
    stats: Mutex<Vec<BackendStats>>,
    cost: CostModel,
}

impl PortfolioScheduler {
    /// A scheduler tracking `n_backends` backends.
    pub fn new(n_backends: usize) -> Self {
        Self {
            stats: Mutex::new(vec![BackendStats::default(); n_backends]),
            cost: CostModel::new(n_backends),
        }
    }

    /// The calibrated cost model routing is priced on. Shared with the
    /// admission/scheduling layers so every decision quotes the same
    /// predicted seconds.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Reliability-priced expected seconds for `backend` on a
    /// `shape`-shaped job: calibrated prediction ÷ success rate ÷
    /// `capacity` (the breaker-state discount; 1.0 when breakers are
    /// off). This is the *quote* channel (admission, DRR, shed hints);
    /// route/race comparisons use the quantized routing channel instead
    /// ([`crate::cost::CostModel::expected_routing_seconds`]).
    pub fn expected_seconds(
        &self,
        registry: &SolverRegistry,
        backend: usize,
        shape: CostShape,
        capacity: f64,
    ) -> f64 {
        self.cost.expected_seconds(
            backend,
            analytic_seconds(&registry.get(backend).spec, shape),
            capacity,
        )
    }

    /// Picks a backend index for an `n_vars`-variable job, or `None` when no
    /// registered backend admits the model.
    ///
    /// Score = expected seconds (calibrated analytic estimate, priced for
    /// reliability) × a quality multiplier; lowest score wins, ties broken
    /// by registration order, so routing is deterministic for a given
    /// telemetry state. Equivalent to `rank(..).first()`.
    pub fn route(&self, registry: &SolverRegistry, n_vars: usize) -> Option<usize> {
        self.rank(registry, n_vars).first().copied()
    }

    /// Ranks every eligible backend for an `n_vars`-variable job, best
    /// first: ascending score, ties broken by registration order. The
    /// prefix of this ranking is what a [`crate::service::BackendChoice::Race`]
    /// job's participants are drawn from, so the order is deterministic for
    /// a given telemetry state.
    pub fn rank(&self, registry: &SolverRegistry, n_vars: usize) -> Vec<usize> {
        self.rank_costed(registry, CostShape::from_n_vars(n_vars), |_| false, |_| 1.0)
    }

    /// [`Self::rank`] with degraded backends removed: `exclude` is consulted
    /// per candidate (open circuit breakers, backends that already failed
    /// this job's earlier attempts). Never degrades to zero — when every
    /// eligible backend is excluded, the best-ranked one stays in, so a
    /// fully tripped portfolio still serves (its next answer is also the
    /// half-open probe that can re-close a breaker).
    pub fn rank_filtered(
        &self,
        registry: &SolverRegistry,
        n_vars: usize,
        exclude: impl Fn(usize) -> bool,
    ) -> Vec<usize> {
        self.rank_costed(registry, CostShape::from_n_vars(n_vars), exclude, |_| 1.0)
    }

    /// The full-information ranking: a measured [`CostShape`] (the
    /// compiled model's real average degree), per-candidate exclusion, and
    /// a per-candidate capacity discount (open/half-open breakers price a
    /// backend up instead of merely dropping out of one ranking). The
    /// fallback rule of [`Self::rank_filtered`] applies: when everything
    /// eligible is excluded, the best-ranked backend stays in.
    pub fn rank_costed(
        &self,
        registry: &SolverRegistry,
        shape: CostShape,
        exclude: impl Fn(usize) -> bool,
        capacity: impl Fn(usize) -> f64,
    ) -> Vec<usize> {
        let eligible = registry.eligible(shape.n_vars);
        let stats = self.stats.lock_unpoisoned();
        let mut scored: Vec<(usize, f64)> = eligible
            .into_iter()
            .map(|i| {
                // Routing-channel pricing (quantized calibration): see
                // [`CostModel::expected_routing_seconds`] for why ranking
                // must not consume the raw jittery ratio.
                let expected = self.cost.expected_routing_seconds(
                    i,
                    analytic_seconds(&registry.get(i).spec, shape),
                    capacity(i),
                );
                (i, expected * (1.0 + QUALITY_WEIGHT * stats[i].ewma_quality))
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let ranked: Vec<usize> = scored.into_iter().map(|(i, _)| i).collect();
        let filtered: Vec<usize> = ranked.iter().copied().filter(|&i| !exclude(i)).collect();
        if filtered.is_empty() && !ranked.is_empty() {
            return vec![ranked[0]];
        }
        filtered
    }

    /// The pre-cost-model ranking (raw latency EWMA seeded by the analytic
    /// curve, no reliability pricing, no shape extrapolation): an observed
    /// backend is scored by its EWMA latency alone, however stale or
    /// unrepresentative of this job's size. Kept as the baseline the
    /// `runtime/cost` bench measures race-loser waste against.
    pub fn rank_ewma_only(&self, registry: &SolverRegistry, n_vars: usize) -> Vec<usize> {
        let shape = CostShape::from_n_vars(n_vars);
        let eligible = registry.eligible(n_vars);
        let stats = self.stats.lock_unpoisoned();
        let mut scored: Vec<(usize, f64)> = eligible
            .into_iter()
            .map(|i| {
                let expected = if stats[i].observations == 0 {
                    analytic_seconds(&registry.get(i).spec, shape)
                } else {
                    stats[i].ewma_latency
                };
                (i, expected * (1.0 + QUALITY_WEIGHT * stats[i].ewma_quality))
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.into_iter().map(|(i, _)| i).collect()
    }

    /// Feeds one completed solve back into the router: latency/quality
    /// EWMAs for scoring, and the cost model's calibration ratio for the
    /// same backend (observed seconds against the analytic estimate for
    /// this job's `shape`).
    ///
    /// `quality` should be the normalized energy gap produced by
    /// [`energy_quality`]; `feasible` is the decoded assignment's
    /// feasibility.
    pub fn record(
        &self,
        registry: &SolverRegistry,
        backend: usize,
        shape: CostShape,
        latency_seconds: f64,
        quality: f64,
        feasible: bool,
    ) {
        {
            let mut stats = self.stats.lock_unpoisoned();
            let s = &mut stats[backend];
            let q = quality + if feasible { 0.0 } else { INFEASIBLE_PENALTY };
            if s.observations == 0 {
                s.ewma_latency = latency_seconds;
                s.ewma_quality = q;
            } else {
                s.ewma_latency = (1.0 - ALPHA) * s.ewma_latency + ALPHA * latency_seconds;
                s.ewma_quality = (1.0 - ALPHA) * s.ewma_quality + ALPHA * q;
            }
            s.observations += 1;
        }
        self.cost.observe(
            backend,
            analytic_seconds(&registry.get(backend).spec, shape),
            latency_seconds,
        );
    }

    /// Records a failure attributed to `backend`: prices its expected cost
    /// up via the success rate without touching latency calibration.
    pub fn record_failure(&self, backend: usize) {
        self.cost.observe_failure(backend);
    }

    /// Records one backend's participation in a portfolio race and whether
    /// it produced the winning result. Solve telemetry (latency/quality) is
    /// fed separately through [`Self::record`] for every participant, so a
    /// race teaches the router about k backends at once — the
    /// compile-once/race-many feedback loop.
    pub fn record_race_outcome(&self, backend: usize, won: bool) {
        let mut stats = self.stats.lock_unpoisoned();
        let s = &mut stats[backend];
        s.race_entries += 1;
        if won {
            s.race_wins += 1;
        }
    }

    /// Snapshot of per-backend statistics, indexed like the registry.
    pub fn stats(&self) -> Vec<BackendStats> {
        self.stats.lock_unpoisoned().clone()
    }
}

/// Normalized energy quality of a solve: how far `energy` sits above the
/// model's naive lower bound, scaled by the bound's magnitude. 0 is ideal;
/// the scale-free form keeps 5-variable and 500-variable jobs comparable.
pub fn energy_quality(energy: f64, naive_lower_bound: f64) -> f64 {
    (energy - naive_lower_bound).max(0.0) / (naive_lower_bound.abs() + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SolverRegistry;

    fn record_simple(sched: &PortfolioScheduler, reg: &SolverRegistry, backend: usize, secs: f64) {
        sched.record(reg, backend, CostShape::from_n_vars(6), secs, 0.0, true);
    }

    #[test]
    fn routing_respects_max_vars() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        // 30 variables: only large-capacity heuristics are eligible.
        let chosen = sched.route(&reg, 30).expect("someone can take 30 vars");
        assert!(reg.get(chosen).spec.max_vars >= 30);
        // Beyond every backend's cap: unroutable.
        assert!(sched.route(&reg, 2_000_000).is_none());
    }

    #[test]
    fn small_jobs_route_to_exact() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        let chosen = sched.route(&reg, 6).expect("routable");
        assert_eq!(reg.get(chosen).spec.name, "exact");
    }

    #[test]
    fn telemetry_shifts_routing() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        let exact = reg.find("exact").unwrap();
        let first = sched.route(&reg, 6).unwrap();
        assert_eq!(first, exact);
        // Exact turns out to be slow and SA answers instantly and optimally:
        // traffic must move off exact.
        let sa = reg.find("simulated-annealing").unwrap();
        for _ in 0..5 {
            record_simple(&sched, &reg, exact, 10.0);
            record_simple(&sched, &reg, sa, 1e-6);
        }
        let rerouted = sched.route(&reg, 6).unwrap();
        assert_eq!(rerouted, sa);
    }

    #[test]
    fn failures_shift_routing_without_a_latency_signal() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        let exact = reg.find("exact").unwrap();
        assert_eq!(sched.route(&reg, 6), Some(exact));
        // Exact answers when it answers — but fails 39 times out of 40.
        // Its expected cost is latency ÷ success rate, which prices it
        // far above the (slower but reliable) heuristics at this size.
        record_simple(&sched, &reg, exact, 1e-5);
        for _ in 0..39 {
            sched.record_failure(exact);
        }
        let rerouted = sched.route(&reg, 6).unwrap();
        assert_ne!(rerouted, exact, "an unreliable backend loses its route");
    }

    #[test]
    fn capacity_discount_reprices_a_backend() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        let exact = reg.find("exact").unwrap();
        let shape = CostShape::from_n_vars(6);
        let full = sched.rank_costed(&reg, shape, |_| false, |_| 1.0);
        assert_eq!(full[0], exact);
        // A breaker-discounted exact (capacity 0.25 = open) is priced 4×
        // but still cheap enough to lead at 6 vars; at a harsher discount
        // the field passes it.
        let discounted =
            sched.rank_costed(&reg, shape, |_| false, |i| if i == exact { 1e-3 } else { 1.0 });
        assert!(
            sched.expected_seconds(&reg, exact, shape, 1e-3)
                > sched.expected_seconds(&reg, exact, shape, 1.0)
        );
        // Deterministic: repeated calls agree.
        assert_eq!(
            discounted,
            sched.rank_costed(&reg, shape, |_| false, |i| if i == exact { 1e-3 } else { 1.0 })
        );
    }

    #[test]
    fn rank_is_deterministic_and_route_is_its_head() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        for n_vars in [4usize, 6, 30] {
            let ranked = sched.rank(&reg, n_vars);
            assert!(!ranked.is_empty());
            assert_eq!(sched.route(&reg, n_vars), Some(ranked[0]));
            for &i in &ranked {
                assert!(reg.get(i).spec.max_vars >= n_vars);
            }
            assert_eq!(ranked, sched.rank(&reg, n_vars), "ranking must be stable");
        }
        assert!(sched.rank(&reg, 2_000_000).is_empty());
    }

    #[test]
    fn race_outcomes_accumulate_per_backend() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        sched.record_race_outcome(0, true);
        sched.record_race_outcome(0, false);
        sched.record_race_outcome(1, false);
        let stats = sched.stats();
        assert_eq!((stats[0].race_entries, stats[0].race_wins), (2, 1));
        assert_eq!((stats[1].race_entries, stats[1].race_wins), (1, 0));
    }

    #[test]
    fn infeasible_results_penalize_a_backend() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        let a = 0;
        sched.record(&reg, a, CostShape::from_n_vars(6), 0.001, 0.0, false);
        let stats = sched.stats();
        assert!(stats[a].ewma_quality >= INFEASIBLE_PENALTY);
    }

    #[test]
    fn recording_calibrates_the_cost_model() {
        let reg = SolverRegistry::standard();
        let sched = PortfolioScheduler::new(reg.len());
        let sa = reg.find("simulated-annealing").unwrap();
        let shape = CostShape::from_n_vars(64);
        let analytic = crate::cost::analytic_seconds(&reg.get(sa).spec, shape);
        // Observed 3× the analytic estimate: predictions follow.
        sched.record(&reg, sa, shape, analytic * 3.0, 0.0, true);
        let predicted = sched.cost_model().predict_seconds(sa, analytic);
        assert!((predicted - analytic * 3.0).abs() < 1e-12);
    }

    #[test]
    fn energy_quality_is_normalized() {
        assert_eq!(energy_quality(-10.0, -10.0), 0.0);
        assert!(energy_quality(-5.0, -10.0) > 0.0);
        // Better-than-bound (impossible, but numerically) clamps to 0.
        assert_eq!(energy_quality(-11.0, -10.0), 0.0);
    }
}
