//! Deterministic fault injection and the retry policy it exercises.
//!
//! NISQ-era backends fail by default — the orchestrator, not the backend,
//! is the reliability layer. Proving that the runtime actually survives
//! panics, stalls, and typed errors requires *injecting* them on demand,
//! at exact points, with no races or sleeps: the same injectable-seam
//! style as [`crate::cluster::Clock`] and
//! [`crate::cluster::DepthProbe`].
//!
//! A [`FaultInjector`] hangs off [`crate::service::ServiceConfig`]
//! (default: [`NoFaults`]) and is consulted at four named seams of job
//! processing ([`FaultSite`]). The scriptable [`FaultPlan`] implementation
//! arms rules like "panic at the 2nd compile" or "error every solve on
//! backend `tabu` from the 3rd on"; each rule keeps its own occurrence
//! counter, so with a single worker the firing schedule is fully
//! deterministic. What fires is a [`FaultAction`]: a panic (exercising the
//! `catch_unwind` + retry path), an artificial delay (exercising deadlines
//! and backoff), or a typed [`crate::service::JobError::Injected`] error.
//!
//! [`RetryPolicy`] bounds the worker's recovery loop for retryable
//! failures (panics and injected errors): exponential backoff from
//! [`RetryPolicy::backoff_base`], capped at [`RetryPolicy::backoff_cap`],
//! plus deterministic jitter derived from the job seed — two runs of the
//! same workload back off identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A named seam in job processing where a [`FaultInjector`] is consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Before the leader compiles the QUBO.
    Compile,
    /// Before presolve/decomposition prepares the pipeline.
    Presolve,
    /// Before a participant backend starts solving. The injector receives
    /// the backend's name, so a plan can target one backend of a race.
    Solve,
    /// After the winner is picked, before the result is cached and served.
    Serve,
}

impl FaultSite {
    /// Lowercase site name, as used in panic messages and injected errors.
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::Compile => "compile",
            FaultSite::Presolve => "presolve",
            FaultSite::Solve => "solve",
            FaultSite::Serve => "serve",
        }
    }
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with this message — exercises the `catch_unwind`, abandoned
    /// single-flight followers, and retry paths exactly like a real bug.
    Panic(String),
    /// Sleep this long, then proceed normally — exercises deadlines and
    /// slow-backend behavior without a slow backend.
    Delay(Duration),
    /// Fail the job with [`crate::service::JobError::Injected`] carrying
    /// this message — a typed, retryable backend error.
    Error(String),
}

/// Injection hook consulted at every [`FaultSite`]. The default
/// implementation used by the service is [`NoFaults`]: the seams cost one
/// virtual call and nothing else.
pub trait FaultInjector: Send + Sync {
    /// Called when execution passes `site`; `backend` carries the backend
    /// name at [`FaultSite::Solve`]. Returning `Some` forces that action.
    fn inject(&self, site: FaultSite, backend: Option<&str>) -> Option<FaultAction>;
}

/// The no-op injector: never fires.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn inject(&self, _site: FaultSite, _backend: Option<&str>) -> Option<FaultAction> {
        None
    }
}

/// Which matching occurrences of a rule's site fire, counted per rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWhen {
    /// Every matching occurrence.
    Always,
    /// Only the `n`th matching occurrence (1-based).
    Nth(u64),
    /// The `n`th and every later matching occurrence (1-based).
    FromNth(u64),
}

impl FaultWhen {
    fn fires(&self, occurrence: u64) -> bool {
        match self {
            FaultWhen::Always => true,
            FaultWhen::Nth(n) => occurrence == *n,
            FaultWhen::FromNth(n) => occurrence >= *n,
        }
    }
}

/// One armed rule of a [`FaultPlan`].
#[derive(Debug)]
struct FaultRule {
    site: FaultSite,
    backend: Option<String>,
    when: FaultWhen,
    action: FaultAction,
    /// Matching occurrences seen so far (including ones that did not fire).
    seen: AtomicU64,
    /// Times this rule actually fired.
    fired: AtomicU64,
}

/// A scriptable, deterministic [`FaultInjector`].
///
/// Rules are consulted in the order they were added. Every rule matching
/// the event's `(site, backend)` counts the occurrence; the first rule
/// whose [`FaultWhen`] fires supplies the action and stops the scan.
/// Counters are per-rule and advance only on matching events, so "the 3rd
/// solve on `tabu`" means exactly that regardless of traffic elsewhere.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (fires nothing until rules are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `action` at `site` for the occurrences selected by `when`.
    pub fn fail_at(mut self, site: FaultSite, when: FaultWhen, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            site,
            backend: None,
            when,
            action,
            seen: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Arms `action` at [`FaultSite::Solve`] for occurrences on `backend`
    /// only — other backends' solves neither fire nor count.
    pub fn fail_backend(mut self, backend: &str, when: FaultWhen, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            site: FaultSite::Solve,
            backend: Some(backend.to_string()),
            when,
            action,
            seen: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Total times any rule fired — a test convenience for asserting a
    /// scripted fault actually happened.
    pub fn fired(&self) -> u64 {
        self.rules.iter().map(|r| r.fired.load(Ordering::Relaxed)).sum()
    }
}

impl FaultInjector for FaultPlan {
    fn inject(&self, site: FaultSite, backend: Option<&str>) -> Option<FaultAction> {
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            if let Some(wanted) = &rule.backend {
                match backend {
                    Some(name) if name == wanted => {}
                    _ => continue,
                }
            }
            let occurrence = rule.seen.fetch_add(1, Ordering::Relaxed) + 1;
            if rule.when.fires(occurrence) {
                rule.fired.fetch_add(1, Ordering::Relaxed);
                return Some(rule.action.clone());
            }
        }
        None
    }
}

/// Bounds the worker's retry loop for retryable failures (panics and
/// [`crate::service::JobError::Injected`] errors). The default policy
/// disables retry entirely, preserving pre-existing single-attempt
/// behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts after the first try; `0` disables retry.
    pub max_retries: u32,
    /// Backoff before the first retry; attempt `k` (1-based) backs off
    /// `backoff_base · 2^(k-1)` plus jitter in `[0, backoff_base)`. A zero
    /// base means no sleeping at all — the deterministic-test setting.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff, jitter included.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
        }
    }
}

/// SplitMix64 — the same deterministic mixer the annealers derive restart
/// seeds with; here it turns (job seed, attempt) into jitter.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The backoff before retry attempt `attempt` (1-based) of the job
    /// seeded with `seed`: exponential in the attempt, jittered by a
    /// deterministic hash of `(seed, attempt)` so a thundering herd of
    /// retries decorrelates — yet identically-seeded runs back off
    /// identically, keeping failure tests reproducible.
    pub fn backoff(&self, seed: u64, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.backoff_base.saturating_mul(1u32 << (attempt.saturating_sub(1)).min(20));
        let jitter_nanos =
            mix64(seed ^ u64::from(attempt)) % self.backoff_base.as_nanos().max(1) as u64;
        exp.saturating_add(Duration::from_nanos(jitter_nanos)).min(self.backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_fires() {
        for site in [FaultSite::Compile, FaultSite::Presolve, FaultSite::Solve, FaultSite::Serve] {
            assert_eq!(NoFaults.inject(site, None), None);
            assert_eq!(NoFaults.inject(site, Some("tabu")), None);
        }
    }

    #[test]
    fn nth_rule_fires_exactly_once_at_the_nth_occurrence() {
        let plan = FaultPlan::new().fail_at(
            FaultSite::Compile,
            FaultWhen::Nth(3),
            FaultAction::Panic("boom".into()),
        );
        assert_eq!(plan.inject(FaultSite::Compile, None), None);
        assert_eq!(plan.inject(FaultSite::Compile, None), None);
        assert_eq!(plan.inject(FaultSite::Compile, None), Some(FaultAction::Panic("boom".into())));
        assert_eq!(plan.inject(FaultSite::Compile, None), None, "Nth is one-shot");
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn from_nth_fires_from_the_nth_occurrence_onwards() {
        let plan = FaultPlan::new().fail_at(
            FaultSite::Serve,
            FaultWhen::FromNth(2),
            FaultAction::Error("down".into()),
        );
        assert_eq!(plan.inject(FaultSite::Serve, None), None);
        for _ in 0..3 {
            assert_eq!(
                plan.inject(FaultSite::Serve, None),
                Some(FaultAction::Error("down".into()))
            );
        }
        assert_eq!(plan.fired(), 3);
    }

    #[test]
    fn backend_rules_only_count_their_backend() {
        let plan = FaultPlan::new().fail_backend(
            "tabu",
            FaultWhen::Nth(2),
            FaultAction::Error("tabu down".into()),
        );
        // Other backends and other sites neither fire nor advance the count.
        assert_eq!(plan.inject(FaultSite::Solve, Some("exact")), None);
        assert_eq!(plan.inject(FaultSite::Compile, Some("tabu")), None);
        assert_eq!(plan.inject(FaultSite::Solve, Some("tabu")), None, "1st tabu solve");
        assert_eq!(
            plan.inject(FaultSite::Solve, Some("tabu")),
            Some(FaultAction::Error("tabu down".into())),
            "2nd tabu solve fires"
        );
    }

    #[test]
    fn rules_are_consulted_in_order_and_all_matching_rules_count() {
        let plan = FaultPlan::new()
            .fail_at(FaultSite::Solve, FaultWhen::Nth(2), FaultAction::Error("first".into()))
            .fail_at(FaultSite::Solve, FaultWhen::Nth(1), FaultAction::Error("second".into()));
        // Occurrence 1: rule 1 counts but does not fire; rule 2 fires.
        assert_eq!(plan.inject(FaultSite::Solve, None), Some(FaultAction::Error("second".into())));
        // Occurrence 2: rule 1 fires before rule 2 is consulted.
        assert_eq!(plan.inject(FaultSite::Solve, None), Some(FaultAction::Error("first".into())));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_retries: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(40),
        };
        let a1 = policy.backoff(7, 1);
        let a2 = policy.backoff(7, 2);
        let a3 = policy.backoff(7, 3);
        assert_eq!(a1, policy.backoff(7, 1), "same (seed, attempt) → same backoff");
        assert!(a1 >= Duration::from_millis(10) && a1 < Duration::from_millis(20), "{a1:?}");
        assert!(a2 >= Duration::from_millis(20) && a2 < Duration::from_millis(30), "{a2:?}");
        // Uncapped the 3rd attempt is 40ms + jitter ≥ 40ms, so the 40ms
        // cap always binds regardless of the jitter draw.
        assert_eq!(a3, Duration::from_millis(40), "cap binds the 3rd attempt (40ms + jitter)");
        assert_ne!(
            policy.backoff(7, 1),
            policy.backoff(8, 1),
            "different seeds jitter differently"
        );
        // A zero base never sleeps — the deterministic-test setting.
        let instant = RetryPolicy { backoff_base: Duration::ZERO, ..policy };
        assert_eq!(instant.backoff(7, 1), Duration::ZERO);
        assert_eq!(instant.backoff(7, 4), Duration::ZERO);
    }

    #[test]
    fn default_policy_disables_retry() {
        assert_eq!(RetryPolicy::default().max_retries, 0);
    }
}
