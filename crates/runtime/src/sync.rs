//! Poison-recovering lock helpers.
//!
//! Workers run jobs under `catch_unwind`, but a panic that fires while a
//! worker holds one of the service's mutexes still poisons it. Before this
//! module, every lock site used `lock().expect(..)`, so a single poisoned
//! mutex — say the metrics table, poisoned mid-`on_solved` — would cascade:
//! every later job touching that lock would panic too, and the service
//! could never drain. None of the runtime's guarded states can be left
//! logically torn by the panics we actually catch (counters are updated in
//! single statements; queue and slot updates are one push/pop), so the
//! right recovery is to take the guard anyway and keep serving.
//!
//! [`LockExt::lock_unpoisoned`] and [`CondvarExt::wait_unpoisoned`] do
//! exactly that: on poison they recover the inner guard instead of
//! propagating the panic. Sites whose `expect` guards a *logical* invariant
//! (not poison) keep their documented `expect`s — see
//! [`crate::scheduler`].

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Poison-recovering [`Mutex::lock`].
pub(crate) trait LockExt<T> {
    /// Locks the mutex, recovering the guard from a poisoned lock instead
    /// of panicking: the poison only records that *some* thread panicked
    /// while holding the guard, and every guarded state in this crate stays
    /// consistent across the panics the workers catch.
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Poison-recovering [`Condvar::wait`].
pub(crate) trait CondvarExt {
    /// Waits on the condvar, recovering the reacquired guard from a
    /// poisoned lock instead of panicking (see [`LockExt::lock_unpoisoned`]).
    fn wait_unpoisoned<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;
}

impl CondvarExt for Condvar {
    fn wait_unpoisoned<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_mutex_still_yields_its_guard() {
        let m = Arc::new(Mutex::new(7u64));
        let poisoner = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "the lock must actually be poisoned");
        assert_eq!(*m.lock_unpoisoned(), 7, "recovery sees the guarded state");
        *m.lock_unpoisoned() = 8;
        assert_eq!(*m.lock_unpoisoned(), 8);
    }
}
