//! Join ordering as a *learning* problem with a variational quantum
//! circuit — Winker et al. \[27\], the one Table I row that is not a QUBO.
//!
//! The MDP: a state is the set of already-joined relations (for left-deep
//! construction), an action appends one remaining relation, the reward is
//! the negated log-cardinality of the new intermediate result. A [`Vqc`]
//! with one readout qubit per relation serves as the Q-function
//! approximator; training is episodic Q-learning with parameter-shift
//! gradient steps, evaluation is a greedy policy rollout.

use qdm_algos::vqc::Vqc;
use qdm_db::plan::CostModel;
use qdm_db::query::QueryGraph;
use rand::Rng;

/// A Q-learning agent whose Q-function is a variational quantum circuit.
#[derive(Debug, Clone)]
pub struct VqcJoinAgent {
    /// The quantum model: `n_relations` qubits, Q(s, a) = `<Z_a>`.
    pub vqc: Vqc,
    n_relations: usize,
    /// Discount factor.
    pub gamma: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Reward normalization: log-cardinalities are divided by this so the
    /// targets fit the `[-1, 1]` readout range.
    pub reward_scale: f64,
}

/// Training telemetry per episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeStats {
    /// Episode index.
    pub episode: usize,
    /// C_out cost of the greedy-policy plan after this episode.
    pub greedy_cost: f64,
    /// Mean squared TD error over the episode's steps.
    pub td_error: f64,
}

impl VqcJoinAgent {
    /// Creates an agent for an `n`-relation query graph.
    pub fn new(n_relations: usize, layers: usize, rng: &mut impl Rng) -> Self {
        assert!(n_relations >= 2);
        Self {
            vqc: Vqc::new(n_relations, layers, rng),
            n_relations,
            gamma: 0.9,
            learning_rate: 0.1,
            reward_scale: 12.0,
        }
    }

    fn features(&self, joined_mask: u64) -> Vec<f64> {
        (0..self.n_relations)
            .map(|r| if joined_mask & (1u64 << r) != 0 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Q-value of appending relation `action` in state `joined_mask`.
    pub fn q_value(&self, joined_mask: u64, action: usize) -> f64 {
        self.vqc.predict_readout(&self.features(joined_mask), action)
    }

    fn reward(&self, cm: &CostModel<'_>, new_mask: u64) -> f64 {
        -cm.cardinality(new_mask).log10() / self.reward_scale
    }

    fn legal_actions(&self, joined_mask: u64) -> Vec<usize> {
        (0..self.n_relations).filter(|&r| joined_mask & (1u64 << r) == 0).collect()
    }

    /// Greedy policy rollout: returns the left-deep order it produces.
    pub fn greedy_order(&self, start: usize) -> Vec<usize> {
        let mut order = vec![start];
        let mut mask = 1u64 << start;
        while order.len() < self.n_relations {
            let best = self
                .legal_actions(mask)
                .into_iter()
                .max_by(|&a, &b| self.q_value(mask, a).total_cmp(&self.q_value(mask, b)))
                .expect("legal actions remain");
            order.push(best);
            mask |= 1u64 << best;
        }
        order
    }

    /// The cheapest greedy rollout over all starting relations.
    pub fn best_greedy_order(&self, graph: &QueryGraph) -> (Vec<usize>, f64) {
        let cm = CostModel::new(graph);
        (0..self.n_relations)
            .map(|s| {
                let order = self.greedy_order(s);
                let cost = cm.cost_left_deep(&order);
                (order, cost)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one start")
    }

    /// Runs one epsilon-greedy training episode; returns the mean squared
    /// TD error.
    pub fn train_episode(&mut self, graph: &QueryGraph, epsilon: f64, rng: &mut impl Rng) -> f64 {
        let cm = CostModel::new(graph);
        let start = rng.random_range(0..self.n_relations);
        let mut mask = 1u64 << start;
        let mut td_sq_sum = 0.0;
        let mut steps = 0usize;
        while mask.count_ones() < self.n_relations as u32 {
            let actions = self.legal_actions(mask);
            let action = if rng.random::<f64>() < epsilon {
                actions[rng.random_range(0..actions.len())]
            } else {
                actions
                    .iter()
                    .copied()
                    .max_by(|&a, &b| self.q_value(mask, a).total_cmp(&self.q_value(mask, b)))
                    .expect("nonempty")
            };
            let new_mask = mask | (1u64 << action);
            let reward = self.reward(&cm, new_mask);
            // TD target: r + gamma * max_a' Q(s', a') (0 at terminal).
            let future = if new_mask.count_ones() < self.n_relations as u32 {
                self.legal_actions(new_mask)
                    .into_iter()
                    .map(|a| self.q_value(new_mask, a))
                    .fold(f64::NEG_INFINITY, f64::max)
            } else {
                0.0
            };
            let target = (reward + self.gamma * future).clamp(-1.0, 1.0);
            let features = self.features(mask);
            let prediction = self.vqc.predict_readout(&features, action);
            let td = prediction - target;
            td_sq_sum += td * td;
            steps += 1;
            // Gradient step on (Q(s,a) - target)^2.
            let grad = self.vqc.gradient_readout(&features, action);
            for (p, g) in self.vqc.params.iter_mut().zip(&grad) {
                *p -= self.learning_rate * 2.0 * td * g;
            }
            mask = new_mask;
        }
        td_sq_sum / steps.max(1) as f64
    }

    /// Full training loop with linearly decaying exploration; returns
    /// per-episode stats (including the greedy plan cost trajectory — the
    /// learning curve of experiment E11). The parameters of the
    /// best-performing checkpoint (including the untrained start) are
    /// restored at the end, so training never degrades the deployed policy.
    pub fn train(
        &mut self,
        graph: &QueryGraph,
        episodes: usize,
        rng: &mut impl Rng,
    ) -> Vec<EpisodeStats> {
        let mut stats = Vec::with_capacity(episodes);
        let mut best_params = self.vqc.params.clone();
        let mut best_cost = self.best_greedy_order(graph).1;
        for ep in 0..episodes {
            let epsilon = 0.5 * (1.0 - ep as f64 / episodes.max(1) as f64);
            let td_error = self.train_episode(graph, epsilon, rng);
            let (_, greedy_cost) = self.best_greedy_order(graph);
            if greedy_cost < best_cost {
                best_cost = greedy_cost;
                best_params.clone_from(&self.vqc.params);
            }
            stats.push(EpisodeStats { episode: ep, greedy_cost, td_error });
        }
        self.vqc.params = best_params;
        stats
    }
}

/// Cost of a uniformly random left-deep order (baseline for E11).
pub fn random_order_cost(graph: &QueryGraph, rng: &mut impl Rng) -> f64 {
    let n = graph.n_relations();
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    CostModel::new(graph).cost_left_deep(&order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_db::optimizer::optimal_left_deep;
    use qdm_db::query::GraphShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_order_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let agent = VqcJoinAgent::new(4, 2, &mut rng);
        for start in 0..4 {
            let mut order = agent.greedy_order(start);
            assert_eq!(order[0], start);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn q_values_are_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let agent = VqcJoinAgent::new(4, 2, &mut rng);
        for mask in [0b0001u64, 0b0011, 0b0111] {
            for a in agent.legal_actions(mask) {
                let q = agent.q_value(mask, a);
                assert!((-1.0..=1.0).contains(&q));
            }
        }
    }

    #[test]
    fn trained_policy_beats_random_plans() {
        let mut rng = StdRng::seed_from_u64(42);
        // Fixed, well-conditioned chain: R0 - R1 - R2 - R3.
        let graph = QueryGraph::new(
            vec![100.0, 2000.0, 50.0, 800.0],
            vec![
                qdm_db::query::JoinEdge { a: 0, b: 1, selectivity: 0.005 },
                qdm_db::query::JoinEdge { a: 1, b: 2, selectivity: 0.02 },
                qdm_db::query::JoinEdge { a: 2, b: 3, selectivity: 0.01 },
            ],
        );
        let mut agent = VqcJoinAgent::new(4, 2, &mut rng);
        let stats = agent.train(&graph, 40, &mut rng);
        let after = agent.best_greedy_order(&graph).1;
        let optimal = optimal_left_deep(&graph).cost;
        let mean_random: f64 =
            (0..60).map(|_| random_order_cost(&graph, &mut rng)).sum::<f64>() / 60.0;
        assert!(after >= optimal - 1e-9);
        assert!(
            after <= mean_random,
            "trained policy ({after}) worse than average random plan ({mean_random})"
        );
        // Learning curve exists for every episode.
        assert_eq!(stats.len(), 40);
    }

    #[test]
    fn random_baseline_never_beats_optimal() {
        let mut rng = StdRng::seed_from_u64(5);
        let graph = QueryGraph::generate(GraphShape::Star, 5, &mut rng);
        let optimal = optimal_left_deep(&graph).cost;
        for _ in 0..10 {
            assert!(random_order_cost(&graph, &mut rng) >= optimal - 1e-9);
        }
    }
}
