//! Join ordering as a QUBO — the Schönberger et al. \[23\]–\[25\] (left-deep)
//! and Nayak et al. \[26\] (bushy) rows of Table I.
//!
//! ## Encoding
//! A *template* join tree fixes the shape; binary variables `x_{r,l}`
//! assign relation `r` to leaf slot `l`, with one-hot penalties in both
//! directions. The cost objective is the **sum of log-cardinalities** of
//! every internal node:
//! `sum_v [ sum_r log(card_r) * [r under v] + sum_{(r,s) in E} log(sel_rs) * [r under v][s under v] ]`,
//! which is exactly quadratic in `x` because "relation under node" is a
//! linear indicator sum. A left-deep template reproduces the positional
//! BILP→QUBO encodings of \[23\]–\[25\]; a balanced template yields bushy
//! trees as in \[26\].
//!
//! The log-sum objective is a standard quadratization of `C_out` (the
//! product structure of cardinalities becomes additive in log space);
//! decoded plans are always re-costed with the true `C_out` model.

use qdm_core::problem::{Decoded, DmProblem};
use qdm_db::plan::{CostModel, JoinTree};
use qdm_db::query::QueryGraph;
use qdm_qubo::model::QuboModel;
use qdm_qubo::penalty;

/// A join-ordering problem over a fixed tree template.
#[derive(Debug, Clone)]
pub struct JoinOrderProblem {
    /// The query graph.
    pub graph: QueryGraph,
    /// Template tree whose leaves are *slot ids* `0..n`.
    pub template: JoinTree,
    /// One-hot penalty weight.
    pub penalty_weight: f64,
}

/// Builds a left-deep template over `n` slots (slot 0 deepest).
pub fn left_deep_template(n: usize) -> JoinTree {
    JoinTree::left_deep(&(0..n).collect::<Vec<_>>())
}

/// Builds a balanced bushy template over `n` slots.
pub fn balanced_template(n: usize) -> JoinTree {
    fn build(slots: &[usize]) -> JoinTree {
        match slots {
            [s] => JoinTree::Leaf(*s),
            _ => {
                let mid = slots.len() / 2;
                JoinTree::Join(Box::new(build(&slots[..mid])), Box::new(build(&slots[mid..])))
            }
        }
    }
    assert!(n >= 1);
    build(&(0..n).collect::<Vec<_>>())
}

/// Replaces template leaves (slot ids) by the relations assigned to them.
pub fn instantiate(template: &JoinTree, relation_of_slot: &[usize]) -> JoinTree {
    match template {
        JoinTree::Leaf(slot) => JoinTree::Leaf(relation_of_slot[*slot]),
        JoinTree::Join(l, r) => JoinTree::Join(
            Box::new(instantiate(l, relation_of_slot)),
            Box::new(instantiate(r, relation_of_slot)),
        ),
    }
}

/// Collects the leaf-slot sets of every internal node.
fn internal_leaf_sets(tree: &JoinTree) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    fn walk(t: &JoinTree, out: &mut Vec<Vec<usize>>) -> Vec<usize> {
        match t {
            JoinTree::Leaf(s) => vec![*s],
            JoinTree::Join(l, r) => {
                let mut leaves = walk(l, out);
                leaves.extend(walk(r, out));
                out.push(leaves.clone());
                leaves
            }
        }
    }
    walk(tree, &mut out);
    out
}

impl JoinOrderProblem {
    /// Left-deep join ordering for a query graph (\[23\]–\[25\]).
    pub fn left_deep(graph: QueryGraph) -> Self {
        let n = graph.n_relations();
        Self::with_template(graph, left_deep_template(n))
    }

    /// Bushy join ordering over a balanced template (\[26\]).
    pub fn bushy(graph: QueryGraph) -> Self {
        let n = graph.n_relations();
        Self::with_template(graph, balanced_template(n))
    }

    /// Custom template; leaves must be slot ids `0..n_relations`.
    pub fn with_template(graph: QueryGraph, template: JoinTree) -> Self {
        let n = graph.n_relations();
        assert_eq!(template.n_leaves(), n, "template must have one leaf per relation");
        // Penalty must dominate the log-cost objective: its coefficients
        // are sums over <= n-1 internal nodes of |log| terms.
        let max_log = graph
            .cardinalities
            .iter()
            .map(|c| c.log10().abs())
            .chain(graph.edges.iter().map(|e| e.selectivity.log10().abs()))
            .fold(1.0f64, f64::max);
        let penalty_weight = 4.0 * max_log * n as f64;
        Self { graph, template, penalty_weight }
    }

    /// Number of relations / slots.
    pub fn n_relations(&self) -> usize {
        self.graph.n_relations()
    }

    #[inline]
    fn var(&self, relation: usize, slot: usize) -> usize {
        relation * self.n_relations() + slot
    }

    /// Extracts `relation_of_slot` if the assignment is a permutation.
    pub fn assignment(&self, bits: &[bool]) -> Option<Vec<usize>> {
        let n = self.n_relations();
        let mut relation_of_slot = vec![usize::MAX; n];
        for r in 0..n {
            let slots: Vec<usize> = (0..n).filter(|&l| bits[self.var(r, l)]).collect();
            if slots.len() != 1 {
                return None;
            }
            if relation_of_slot[slots[0]] != usize::MAX {
                return None;
            }
            relation_of_slot[slots[0]] = r;
        }
        Some(relation_of_slot)
    }

    /// The instantiated join tree for a feasible assignment.
    pub fn tree_from_bits(&self, bits: &[bool]) -> Option<JoinTree> {
        self.assignment(bits).map(|slots| instantiate(&self.template, &slots))
    }

    /// The log-cost proxy of a slot assignment (what the QUBO optimizes).
    pub fn log_cost(&self, relation_of_slot: &[usize]) -> f64 {
        let cm = CostModel::new(&self.graph);
        let tree = instantiate(&self.template, relation_of_slot);
        internal_leaf_sets(&tree)
            .iter()
            .map(|rels| {
                let mask = rels.iter().fold(0u64, |m, &r| m | (1u64 << r));
                cm.cardinality(mask).log10()
            })
            .sum()
    }
}

impl DmProblem for JoinOrderProblem {
    fn name(&self) -> String {
        let kind = if self.template.is_left_deep() { "left-deep" } else { "bushy" };
        format!("JoinOrder({kind}, {} relations)", self.n_relations())
    }

    fn n_vars(&self) -> usize {
        let n = self.n_relations();
        n * n
    }

    #[allow(clippy::needless_range_loop)] // index math mirrors the paper's QUBO sums
    fn to_qubo(&self) -> QuboModel {
        let n = self.n_relations();
        let mut q = QuboModel::new(n * n);
        // Coverage counts: c1[l] = #internal nodes covering slot l;
        // c2[l][l'] = #internal nodes covering both.
        let sets = internal_leaf_sets(&self.template);
        let mut c1 = vec![0.0f64; n];
        let mut c2 = vec![vec![0.0f64; n]; n];
        for set in &sets {
            for (i, &a) in set.iter().enumerate() {
                c1[a] += 1.0;
                for &b in &set[i + 1..] {
                    c2[a][b] += 1.0;
                    c2[b][a] += 1.0;
                }
            }
        }
        // Linear: relation r at slot l contributes log(card_r) for every
        // covering internal node.
        for r in 0..n {
            let lc = self.graph.cardinalities[r].log10();
            for l in 0..n {
                q.add_linear(self.var(r, l), lc * c1[l]);
            }
        }
        // Quadratic: each join predicate contributes log(sel) whenever both
        // endpoints sit under a common internal node.
        for e in &self.graph.edges {
            let ls = e.selectivity.log10();
            for l in 0..n {
                for lp in 0..n {
                    if l != lp {
                        q.add_quadratic(self.var(e.a, l), self.var(e.b, lp), ls * c2[l][lp]);
                    }
                }
            }
        }
        // One-hot in both directions.
        for r in 0..n {
            let vars: Vec<usize> = (0..n).map(|l| self.var(r, l)).collect();
            penalty::exactly_one(&mut q, &vars, self.penalty_weight);
        }
        for l in 0..n {
            let vars: Vec<usize> = (0..n).map(|r| self.var(r, l)).collect();
            penalty::exactly_one(&mut q, &vars, self.penalty_weight);
        }
        q
    }

    fn decode(&self, bits: &[bool]) -> Decoded {
        match self.tree_from_bits(bits) {
            Some(tree) => {
                let cm = CostModel::new(&self.graph);
                let cost = cm.cost(&tree);
                Decoded { feasible: true, objective: cost, summary: format!("{tree}") }
            }
            None => Decoded {
                feasible: false,
                objective: f64::INFINITY,
                summary: "not a permutation".into(),
            },
        }
    }

    fn repair(&self, bits: &[bool]) -> Vec<bool> {
        let n = self.n_relations();
        let mut relation_of_slot = vec![usize::MAX; n];
        let mut used = vec![false; n];
        // Keep unambiguous claims.
        for l in 0..n {
            let claims: Vec<usize> = (0..n).filter(|&r| bits[self.var(r, l)] && !used[r]).collect();
            if let [r] = claims[..] {
                relation_of_slot[l] = r;
                used[r] = true;
            }
        }
        // Fill remaining slots with remaining relations.
        let mut free: Vec<usize> = (0..n).filter(|&r| !used[r]).collect();
        for slot in relation_of_slot.iter_mut() {
            if *slot == usize::MAX {
                *slot = free.pop().expect("counts match");
            }
        }
        let mut out = vec![false; n * n];
        for (l, &r) in relation_of_slot.iter().enumerate() {
            out[self.var(r, l)] = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_db::optimizer::{optimal_bushy, optimal_left_deep};
    use qdm_db::query::GraphShape;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(seed: u64, shape: GraphShape, n: usize) -> QueryGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        QueryGraph::generate(shape, n, &mut rng)
    }

    /// Brute force over permutations: minimum of the log-cost proxy.
    fn brute_force_log_opt(p: &JoinOrderProblem) -> f64 {
        let n = p.n_relations();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best = f64::INFINITY;
        fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
            if k == v.len() {
                f(v);
                return;
            }
            for i in k..v.len() {
                v.swap(k, i);
                permute(v, k + 1, f);
                v.swap(k, i);
            }
        }
        permute(&mut perm, 0, &mut |order| {
            best = best.min(p.log_cost(order));
        });
        best
    }

    #[test]
    fn templates_have_expected_shapes() {
        assert!(left_deep_template(5).is_left_deep());
        let b = balanced_template(4);
        assert!(!b.is_left_deep());
        assert_eq!(b.n_leaves(), 4);
    }

    #[test]
    fn qubo_optimum_is_feasible_and_matches_log_proxy_optimum() {
        for shape in [GraphShape::Chain, GraphShape::Star, GraphShape::Cycle] {
            let p = JoinOrderProblem::left_deep(graph(3, shape, 4));
            let res = solve_exact(&p.to_qubo());
            let assignment = p.assignment(&res.bits).expect("feasible optimum");
            let got = p.log_cost(&assignment);
            let want = brute_force_log_opt(&p);
            assert!(
                (got - want).abs() < 1e-9,
                "{shape:?}: qubo log-cost {got} vs brute force {want}"
            );
        }
    }

    #[test]
    fn decoded_left_deep_plan_is_near_dp_optimum() {
        for seed in [1, 2, 3] {
            let g = graph(seed, GraphShape::Chain, 5);
            let p = JoinOrderProblem::left_deep(g.clone());
            let res = solve_exact(&p.to_qubo());
            let decoded = p.decode(&res.bits);
            assert!(decoded.feasible);
            let dp = optimal_left_deep(&g);
            // Log-proxy optimum should be within a small factor of C_out optimum.
            assert!(
                decoded.objective <= 10.0 * dp.cost + 1e-9,
                "seed {seed}: qubo plan {} vs dp {}",
                decoded.objective,
                dp.cost
            );
        }
    }

    #[test]
    fn bushy_template_produces_bushy_trees() {
        let g = graph(5, GraphShape::Chain, 4);
        let p = JoinOrderProblem::bushy(g.clone());
        let res = solve_exact(&p.to_qubo());
        let tree = p.tree_from_bits(&res.bits).expect("feasible");
        assert!(!tree.is_left_deep());
        assert_eq!(tree.relation_mask(), 0b1111);
        // Bushy optimum within the template class can't beat the global DP
        // bound.
        let decoded = p.decode(&res.bits);
        assert!(decoded.objective >= optimal_bushy(&g).cost - 1e-9);
    }

    #[test]
    fn infeasible_bits_are_detected_and_repairable() {
        let g = graph(9, GraphShape::Star, 4);
        let p = JoinOrderProblem::left_deep(g);
        let bad = vec![false; p.n_vars()];
        assert!(!p.decode(&bad).feasible);
        let repaired = p.repair(&bad);
        assert!(p.decode(&repaired).feasible);
        // All-true also repairs.
        let repaired2 = p.repair(&vec![true; p.n_vars()]);
        assert!(p.decode(&repaired2).feasible);
    }

    #[test]
    fn log_cost_orders_plans_like_cout_on_chains() {
        // On a chain, both metrics must agree that following the chain is
        // better than starting with a cross product.
        let g = QueryGraph::new(
            vec![100.0, 1000.0, 500.0],
            vec![
                qdm_db::query::JoinEdge { a: 0, b: 1, selectivity: 0.001 },
                qdm_db::query::JoinEdge { a: 1, b: 2, selectivity: 0.01 },
            ],
        );
        let p = JoinOrderProblem::left_deep(g.clone());
        let cm = CostModel::new(&g);
        let chain_order = [0usize, 1, 2];
        let cross_order = [0usize, 2, 1];
        assert!(p.log_cost(&chain_order) < p.log_cost(&cross_order));
        assert!(cm.cost_left_deep(&chain_order) < cm.cost_left_deep(&cross_order));
    }
}
