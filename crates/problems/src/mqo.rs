//! Multiple query optimization (MQO) as a QUBO — Trummer & Koch \[20\], the
//! earliest Table I row and the source of the paper's "1000x speedup"
//! anecdote.
//!
//! The model: each query has a set of alternative plans with known costs;
//! pairs of plans (of *different* queries) may share intermediate results,
//! saving cost when both are selected. Choose exactly one plan per query
//! minimizing `sum(chosen plan costs) - sum(savings of co-chosen pairs)`.
//!
//! The logical QUBO is exactly Trummer & Koch's: one binary variable per
//! plan, a one-hot penalty per query, plan costs on the diagonal, negated
//! savings on the couplings. The physical level (Chimera embedding) is
//! provided by `qdm_anneal::embedding`.

use qdm_core::problem::{Decoded, DmProblem};
use qdm_qubo::model::QuboModel;
use qdm_qubo::penalty;
use rand::Rng;

/// An MQO instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MqoInstance {
    /// Number of queries.
    pub n_queries: usize,
    /// `plan_query[p]` = which query plan `p` belongs to.
    pub plan_query: Vec<usize>,
    /// Cost of each plan.
    pub plan_cost: Vec<f64>,
    /// Savings for co-selecting plan pairs `(p, q, saving)` with
    /// `plan_query[p] != plan_query[q]` and `saving > 0`.
    pub savings: Vec<(usize, usize, f64)>,
}

impl MqoInstance {
    /// Generates a random instance: `n_queries` queries with
    /// `plans_per_query` alternatives each, costs in `[10, 100)`, and each
    /// cross-query plan pair sharing intermediates with probability
    /// `sharing_prob` (saving = fraction of the cheaper plan's cost).
    pub fn generate(
        n_queries: usize,
        plans_per_query: usize,
        sharing_prob: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n_queries >= 1 && plans_per_query >= 1);
        let n_plans = n_queries * plans_per_query;
        let plan_query: Vec<usize> = (0..n_plans).map(|p| p / plans_per_query).collect();
        let plan_cost: Vec<f64> = (0..n_plans).map(|_| rng.random_range(10.0..100.0)).collect();
        let mut savings = Vec::new();
        for p in 0..n_plans {
            for q in (p + 1)..n_plans {
                if plan_query[p] != plan_query[q] && rng.random::<f64>() < sharing_prob {
                    let cap = plan_cost[p].min(plan_cost[q]);
                    savings.push((p, q, rng.random_range(0.1..0.5) * cap));
                }
            }
        }
        Self { n_queries, plan_query, plan_cost, savings }
    }

    /// Number of plan variables.
    pub fn n_plans(&self) -> usize {
        self.plan_cost.len()
    }

    /// The plan indices belonging to a query.
    pub fn plans_of(&self, query: usize) -> Vec<usize> {
        (0..self.n_plans()).filter(|&p| self.plan_query[p] == query).collect()
    }

    /// Objective of a full selection (`selection[q]` = plan chosen for
    /// query `q`): total cost minus savings of co-selected pairs.
    pub fn objective(&self, selection: &[usize]) -> f64 {
        assert_eq!(selection.len(), self.n_queries);
        let mut total: f64 = selection.iter().map(|&p| self.plan_cost[p]).sum();
        for &(p, q, s) in &self.savings {
            if selection.contains(&p) && selection.contains(&q) {
                total -= s;
            }
        }
        total
    }

    /// Exhaustive optimum — exponential in `n_queries`, for ground truth on
    /// small instances.
    pub fn exhaustive_optimum(&self) -> (Vec<usize>, f64) {
        let groups: Vec<Vec<usize>> = (0..self.n_queries).map(|q| self.plans_of(q)).collect();
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut current = vec![0usize; self.n_queries];
        self.enumerate(&groups, 0, &mut current, &mut best);
        best.expect("at least one selection exists")
    }

    fn enumerate(
        &self,
        groups: &[Vec<usize>],
        q: usize,
        current: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if q == self.n_queries {
            let obj = self.objective(current);
            if best.as_ref().is_none_or(|(_, b)| obj < *b) {
                *best = Some((current.clone(), obj));
            }
            return;
        }
        for &p in &groups[q] {
            current[q] = p;
            self.enumerate(groups, q + 1, current, best);
        }
    }

    /// Greedy baseline: pick the cheapest plan per query, then improve by
    /// single-query plan swaps until no improvement.
    pub fn greedy(&self) -> (Vec<usize>, f64) {
        let mut selection: Vec<usize> = (0..self.n_queries)
            .map(|q| {
                self.plans_of(q)
                    .into_iter()
                    .min_by(|&a, &b| self.plan_cost[a].total_cmp(&self.plan_cost[b]))
                    .expect("query has plans")
            })
            .collect();
        let mut obj = self.objective(&selection);
        loop {
            let mut improved = false;
            for q in 0..self.n_queries {
                for p in self.plans_of(q) {
                    if selection[q] == p {
                        continue;
                    }
                    let old = selection[q];
                    selection[q] = p;
                    let new_obj = self.objective(&selection);
                    if new_obj < obj - 1e-12 {
                        obj = new_obj;
                        improved = true;
                    } else {
                        selection[q] = old;
                    }
                }
            }
            if !improved {
                return (selection, obj);
            }
        }
    }
}

/// The [`DmProblem`] wrapper carrying the penalty weight.
#[derive(Debug, Clone)]
pub struct MqoProblem {
    /// The instance.
    pub instance: MqoInstance,
    /// One-hot penalty weight; use [`MqoProblem::new`] for the heuristic.
    pub penalty_weight: f64,
}

impl MqoProblem {
    /// Wraps an instance with an automatically chosen penalty weight
    /// (larger than any achievable objective swing).
    pub fn new(instance: MqoInstance) -> Self {
        let cost_span: f64 = instance.plan_cost.iter().fold(0.0f64, |m, &c| m.max(c));
        let saving_span: f64 = instance.savings.iter().map(|&(_, _, s)| s).sum();
        Self { penalty_weight: 2.0 * (cost_span + saving_span).max(1.0), instance }
    }

    /// Extracts the per-query selection from an assignment if feasible.
    pub fn selection(&self, bits: &[bool]) -> Option<Vec<usize>> {
        let mut selection = Vec::with_capacity(self.instance.n_queries);
        for q in 0..self.instance.n_queries {
            let chosen: Vec<usize> =
                self.instance.plans_of(q).into_iter().filter(|&p| bits[p]).collect();
            if chosen.len() != 1 {
                return None;
            }
            selection.push(chosen[0]);
        }
        Some(selection)
    }
}

impl DmProblem for MqoProblem {
    fn name(&self) -> String {
        format!(
            "MQO({} queries x {} plans)",
            self.instance.n_queries,
            self.instance.n_plans() / self.instance.n_queries.max(1)
        )
    }

    fn n_vars(&self) -> usize {
        self.instance.n_plans()
    }

    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.instance.n_plans());
        for (p, &c) in self.instance.plan_cost.iter().enumerate() {
            q.add_linear(p, c);
        }
        for &(p1, p2, s) in &self.instance.savings {
            q.add_quadratic(p1, p2, -s);
        }
        for query in 0..self.instance.n_queries {
            penalty::exactly_one(&mut q, &self.instance.plans_of(query), self.penalty_weight);
        }
        q
    }

    fn decode(&self, bits: &[bool]) -> Decoded {
        match self.selection(bits) {
            Some(selection) => Decoded {
                feasible: true,
                objective: self.instance.objective(&selection),
                summary: format!("plans {selection:?}"),
            },
            None => Decoded {
                feasible: false,
                objective: f64::INFINITY,
                summary: "one-hot violation".into(),
            },
        }
    }

    fn repair(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = vec![false; bits.len()];
        for query in 0..self.instance.n_queries {
            let plans = self.instance.plans_of(query);
            let chosen: Vec<usize> = plans.iter().copied().filter(|&p| bits[p]).collect();
            let keep = match chosen.len() {
                1 => chosen[0],
                0 => plans
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        self.instance.plan_cost[a].total_cmp(&self.instance.plan_cost[b])
                    })
                    .expect("query has plans"),
                _ => chosen
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        self.instance.plan_cost[a].total_cmp(&self.instance.plan_cost[b])
                    })
                    .expect("nonempty"),
            };
            out[keep] = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(seed: u64, queries: usize, plans: usize) -> MqoInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MqoInstance::generate(queries, plans, 0.3, &mut rng)
    }

    #[test]
    fn generator_shapes() {
        let inst = instance(1, 4, 3);
        assert_eq!(inst.n_plans(), 12);
        assert_eq!(inst.plans_of(0), vec![0, 1, 2]);
        assert_eq!(inst.plans_of(3), vec![9, 10, 11]);
        for &(p, q, s) in &inst.savings {
            assert_ne!(inst.plan_query[p], inst.plan_query[q]);
            assert!(s > 0.0);
        }
    }

    #[test]
    fn qubo_optimum_matches_exhaustive_optimum() {
        for seed in 0..5 {
            let inst = instance(seed, 3, 3);
            let (_, best_obj) = inst.exhaustive_optimum();
            let problem = MqoProblem::new(inst);
            let res = solve_exact(&problem.to_qubo());
            let decoded = problem.decode(&res.bits);
            assert!(decoded.feasible, "seed {seed}: infeasible QUBO optimum");
            assert!(
                (decoded.objective - best_obj).abs() < 1e-9,
                "seed {seed}: qubo {} vs exhaustive {}",
                decoded.objective,
                best_obj
            );
        }
    }

    #[test]
    fn permuted_instance_has_same_canonical_fingerprint() {
        // The same MQO instance with its plan variables enumerated in
        // reverse order: the label-sensitive fingerprint differs, the
        // canonical fingerprint — the runtime's cache key — does not.
        let inst = instance(3, 3, 2);
        let n = inst.n_plans();
        let to: Vec<usize> = (0..n).rev().collect();
        let mut plan_query = vec![0usize; n];
        let mut plan_cost = vec![0.0f64; n];
        for (p, &t) in to.iter().enumerate() {
            plan_query[t] = inst.plan_query[p];
            plan_cost[t] = inst.plan_cost[p];
        }
        let savings =
            inst.savings.iter().map(|&(p, q, s)| (to[p].min(to[q]), to[p].max(to[q]), s)).collect();
        let permuted = MqoInstance { n_queries: inst.n_queries, plan_query, plan_cost, savings };
        let original_qubo = MqoProblem::new(inst).to_qubo();
        let permuted_qubo = MqoProblem::new(permuted).to_qubo();
        assert_ne!(
            original_qubo.fingerprint(),
            permuted_qubo.fingerprint(),
            "plain fingerprint is label-sensitive"
        );
        assert_eq!(
            original_qubo.canonical_fingerprint(),
            permuted_qubo.canonical_fingerprint(),
            "canonical fingerprint must be invariant under plan relabeling"
        );
    }

    #[test]
    fn qubo_energy_equals_objective_on_feasible_assignments() {
        let inst = instance(7, 3, 2);
        let problem = MqoProblem::new(inst.clone());
        let q = problem.to_qubo();
        // Feasible assignment: plan 0 of each query.
        let mut bits = vec![false; inst.n_plans()];
        for query in 0..inst.n_queries {
            bits[inst.plans_of(query)[0]] = true;
        }
        let selection: Vec<usize> = (0..inst.n_queries).map(|qq| inst.plans_of(qq)[0]).collect();
        assert!(
            (q.energy(&bits) - inst.objective(&selection)).abs() < 1e-9,
            "penalty terms must vanish on feasible assignments"
        );
    }

    #[test]
    fn greedy_is_feasible_and_bounded_by_optimum() {
        let inst = instance(3, 4, 3);
        let (_, opt) = inst.exhaustive_optimum();
        let (sel, obj) = inst.greedy();
        assert_eq!(sel.len(), 4);
        assert!(obj >= opt - 1e-9);
    }

    #[test]
    fn repair_fixes_violations() {
        let inst = instance(5, 3, 3);
        let problem = MqoProblem::new(inst);
        // All-false and all-true both get repaired.
        let fixed0 = problem.repair(&[false; 9]);
        assert!(problem.decode(&fixed0).feasible);
        let fixed1 = problem.repair(&[true; 9]);
        assert!(problem.decode(&fixed1).feasible);
    }

    #[test]
    fn savings_reduce_objective() {
        let inst = MqoInstance {
            n_queries: 2,
            plan_query: vec![0, 0, 1, 1],
            plan_cost: vec![10.0, 12.0, 20.0, 21.0],
            savings: vec![(1, 3, 15.0)],
        };
        // Without savings the best is plans {0, 2} = 30; with the shared
        // pair {1, 3} = 33 - 15 = 18.
        let (sel, obj) = inst.exhaustive_optimum();
        assert_eq!(sel, vec![1, 3]);
        assert!((obj - 18.0).abs() < 1e-12);
    }
}
