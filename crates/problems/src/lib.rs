//! # qdm-problems — the Table I problem encodings
//!
//! Every data-management problem the paper's Table I surveys, encoded per
//! the cited works and implementing [`qdm_core::problem::DmProblem`] so the
//! Fig. 2 pipeline can route each one to any solver:
//!
//! - [`mqo`] — multiple query optimization QUBO (Trummer & Koch \[20\];
//!   QAOA variants \[21\], \[22\]);
//! - [`joinorder`] — join ordering via template-assignment QUBO: left-deep
//!   (Schönberger et al. \[23\]–\[25\]) and bushy (Nayak et al. \[26\]);
//! - [`vqc_join`] — join ordering as reinforcement learning with a
//!   variational quantum circuit Q-function (Winker et al. \[27\]);
//! - [`schema`] — schema matching QUBO with string similarity and type
//!   constraints (Fritsch & Scherzinger \[28\]);
//! - [`txn_schedule`] — two-phase-locking transaction scheduling QUBO
//!   (Bittner & Groppe \[29\], \[30\]) and the Grover-search variant
//!   (Groppe & Groppe \[31\]).

#![warn(missing_docs)]

pub mod joinorder;
pub mod mqo;
pub mod schema;
pub mod txn_schedule;
pub mod vqc_join;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::joinorder::{
        balanced_template, instantiate, left_deep_template, JoinOrderProblem,
    };
    pub use crate::mqo::{MqoInstance, MqoProblem};
    pub use crate::schema::{
        bigram_jaccard, generate_benchmark, levenshtein, name_similarity, precision_recall,
        Attribute, DataType, MatchingInstance, Schema as MatchingSchema, SchemaMatchingProblem,
    };
    pub use crate::txn_schedule::{
        grover_schedule_search, GroverScheduleResult, TxnScheduleProblem,
    };
    pub use crate::vqc_join::{random_order_cost, EpisodeStats, VqcJoinAgent};
}

pub use prelude::*;
