//! Schema matching as a QUBO — Fritsch & Scherzinger \[28\], the data-
//! integration row of Table I.
//!
//! Attributes of two schemas are paired by maximizing a string-similarity
//! reward under one-to-one matching constraints (at most one partner per
//! attribute). The QUBO has one variable per candidate pair, negated
//! similarity rewards on the diagonal, and at-most-one penalties per row
//! and column; type-incompatible pairs are excluded outright ("hard
//! variants" of matching, as in \[28\]).

use qdm_core::problem::{Decoded, DmProblem};
use qdm_qubo::model::QuboModel;
use qdm_qubo::penalty;
use rand::Rng;

/// An attribute: name plus a coarse data type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Coarse type used for hard compatibility constraints.
    pub data_type: DataType,
}

/// Coarse attribute types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Numeric.
    Number,
    /// Text.
    Text,
    /// Date/time.
    Date,
}

/// A schema: a list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// Attributes in declaration order.
    pub attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(attrs: &[(&str, DataType)]) -> Self {
        Self {
            attributes: attrs
                .iter()
                .map(|(n, t)| Attribute { name: (*n).to_string(), data_type: *t })
                .collect(),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

/// Levenshtein edit distance between two strings.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Character-bigram Jaccard similarity in `[0, 1]`.
pub fn bigram_jaccard(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::HashSet<(char, char)> {
        let lower: Vec<char> = s.to_lowercase().chars().collect();
        lower.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return if a.to_lowercase() == b.to_lowercase() { 1.0 } else { 0.0 };
    }
    let inter = ga.intersection(&gb).count() as f64;
    let union = ga.union(&gb).count() as f64;
    inter / union
}

/// Combined name similarity in `[0, 1]`: mean of normalized Levenshtein
/// similarity and bigram Jaccard.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    let max_len = la.chars().count().max(lb.chars().count()).max(1);
    let lev = 1.0 - levenshtein(&la, &lb) as f64 / max_len as f64;
    0.5 * lev + 0.5 * bigram_jaccard(&la, &lb)
}

/// A schema-matching instance: two schemas plus the similarity matrix.
#[derive(Debug, Clone)]
pub struct MatchingInstance {
    /// Source schema.
    pub source: Schema,
    /// Target schema.
    pub target: Schema,
    /// `similarity[i][j]` between source attribute `i` and target `j`;
    /// `None` marks type-incompatible (excluded) pairs.
    pub similarity: Vec<Vec<Option<f64>>>,
}

impl MatchingInstance {
    /// Builds an instance, computing similarities and excluding
    /// type-incompatible pairs.
    pub fn new(source: Schema, target: Schema) -> Self {
        let similarity = source
            .attributes
            .iter()
            .map(|sa| {
                target
                    .attributes
                    .iter()
                    .map(|ta| {
                        (sa.data_type == ta.data_type).then(|| name_similarity(&sa.name, &ta.name))
                    })
                    .collect()
            })
            .collect();
        Self { source, target, similarity }
    }

    /// Total similarity of a matching (`matching[i] = Some(j)`), or `None`
    /// if any pair is incompatible / not one-to-one.
    pub fn score(&self, matching: &[Option<usize>]) -> Option<f64> {
        let mut used = vec![false; self.target.len()];
        let mut total = 0.0;
        for (i, m) in matching.iter().enumerate() {
            if let Some(j) = *m {
                if used[j] {
                    return None;
                }
                used[j] = true;
                total += self.similarity[i][j]?;
            }
        }
        Some(total)
    }

    /// Exact maximum-weight one-to-one matching via DP over target subsets
    /// (`O(n_source * 2^n_target)`); targets capped at 20 attributes.
    #[allow(clippy::needless_range_loop)] // bitmask DP indexes two tables in lockstep
    pub fn exact_matching(&self) -> (Vec<Option<usize>>, f64) {
        let nt = self.target.len();
        assert!(nt <= 20, "exact matching caps at 20 target attributes");
        let ns = self.source.len();
        let full = 1usize << nt;
        // dp[mask] = best score using source attrs 0..i with target set mask.
        let mut dp = vec![f64::NEG_INFINITY; full];
        let mut choice: Vec<Vec<i32>> = vec![vec![-2; full]; ns];
        dp[0] = 0.0;
        for i in 0..ns {
            let mut next = vec![f64::NEG_INFINITY; full];
            for mask in 0..full {
                if dp[mask] == f64::NEG_INFINITY {
                    continue;
                }
                // Option: leave source i unmatched.
                if dp[mask] > next[mask] {
                    next[mask] = dp[mask];
                    choice[i][mask] = -1;
                }
                // Option: match to a free compatible target.
                for j in 0..nt {
                    if mask & (1 << j) == 0 {
                        if let Some(sim) = self.similarity[i][j] {
                            let nm = mask | (1 << j);
                            let val = dp[mask] + sim;
                            if val > next[nm] {
                                next[nm] = val;
                                choice[i][nm] = j as i32;
                            }
                        }
                    }
                }
            }
            dp = next;
        }
        let (mut best_mask, mut best) = (0usize, f64::NEG_INFINITY);
        for (mask, &v) in dp.iter().enumerate() {
            if v > best {
                best = v;
                best_mask = mask;
            }
        }
        // Reconstruct.
        let mut matching = vec![None; ns];
        let mut mask = best_mask;
        for i in (0..ns).rev() {
            match choice[i][mask] {
                -1 => {}
                j if j >= 0 => {
                    matching[i] = Some(j as usize);
                    mask &= !(1usize << j);
                }
                _ => {}
            }
        }
        (matching, best)
    }

    /// Greedy baseline: repeatedly take the highest-similarity available
    /// pair above `threshold`.
    pub fn greedy_matching(&self, threshold: f64) -> (Vec<Option<usize>>, f64) {
        let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
        for (i, row) in self.similarity.iter().enumerate() {
            for (j, sim) in row.iter().enumerate() {
                if let Some(s) = sim {
                    if *s >= threshold {
                        pairs.push((i, j, *s));
                    }
                }
            }
        }
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
        let mut matching = vec![None; self.source.len()];
        let mut used_t = vec![false; self.target.len()];
        let mut total = 0.0;
        for (i, j, s) in pairs {
            if matching[i].is_none() && !used_t[j] {
                matching[i] = Some(j);
                used_t[j] = true;
                total += s;
            }
        }
        (matching, total)
    }
}

/// Precision / recall of a predicted matching against ground truth.
pub fn precision_recall(predicted: &[Option<usize>], truth: &[Option<usize>]) -> (f64, f64) {
    let tp = predicted.iter().zip(truth).filter(|(p, t)| p.is_some() && p == t).count() as f64;
    let predicted_n = predicted.iter().filter(|p| p.is_some()).count() as f64;
    let truth_n = truth.iter().filter(|t| t.is_some()).count() as f64;
    let precision = if predicted_n > 0.0 { tp / predicted_n } else { 1.0 };
    let recall = if truth_n > 0.0 { tp / truth_n } else { 1.0 };
    (precision, recall)
}

/// Generates a matching benchmark: a source schema and a target derived by
/// renaming (abbreviations, prefixes, case) plus `noise` unrelated
/// attributes. Returns the instance and the ground-truth matching.
pub fn generate_benchmark(
    n_attributes: usize,
    noise: usize,
    rng: &mut impl Rng,
) -> (MatchingInstance, Vec<Option<usize>>) {
    const BASE: [(&str, DataType); 12] = [
        ("customer_id", DataType::Number),
        ("order_date", DataType::Date),
        ("total_amount", DataType::Number),
        ("email_address", DataType::Text),
        ("phone_number", DataType::Text),
        ("shipping_city", DataType::Text),
        ("product_name", DataType::Text),
        ("quantity", DataType::Number),
        ("unit_price", DataType::Number),
        ("created_at", DataType::Date),
        ("discount_rate", DataType::Number),
        ("country_code", DataType::Text),
    ];
    let n = n_attributes.min(BASE.len());
    let source = Schema::new(&BASE[..n]);
    let mut target_attrs: Vec<Attribute> = Vec::new();
    let mut truth = vec![None; n];
    for (i, (name, ty)) in BASE[..n].iter().enumerate() {
        // Rename: drop underscores, abbreviate, or prefix.
        let renamed = match rng.random_range(0..3) {
            0 => name.replace('_', ""),
            1 => format!("t_{name}"),
            _ => name.chars().filter(|c| !"aeiou_".contains(*c)).collect::<String>(),
        };
        truth[i] = Some(target_attrs.len());
        target_attrs.push(Attribute { name: renamed, data_type: *ty });
    }
    for k in 0..noise {
        target_attrs
            .push(Attribute { name: format!("unrelated_column_{k}"), data_type: DataType::Text });
    }
    let target = Schema { attributes: target_attrs };
    (MatchingInstance::new(source, target), truth)
}

/// The [`DmProblem`] wrapper for QUBO-based matching.
#[derive(Debug, Clone)]
pub struct SchemaMatchingProblem {
    /// The instance.
    pub instance: MatchingInstance,
    /// Penalty weight for the at-most-one constraints.
    pub penalty_weight: f64,
    /// Pairs below this similarity get no variable benefit (still allowed).
    pub threshold: f64,
}

impl SchemaMatchingProblem {
    /// Wraps an instance with a dominating penalty weight.
    pub fn new(instance: MatchingInstance) -> Self {
        Self { instance, penalty_weight: 4.0, threshold: 0.25 }
    }

    #[inline]
    fn var(&self, i: usize, j: usize) -> usize {
        i * self.instance.target.len() + j
    }

    /// Extracts the matching from bits; `None` on a one-to-one violation.
    pub fn matching(&self, bits: &[bool]) -> Option<Vec<Option<usize>>> {
        let ns = self.instance.source.len();
        let nt = self.instance.target.len();
        let mut matching = vec![None; ns];
        let mut used = vec![false; nt];
        for i in 0..ns {
            for j in 0..nt {
                if bits[self.var(i, j)] {
                    if matching[i].is_some() || used[j] {
                        return None;
                    }
                    matching[i] = Some(j);
                    used[j] = true;
                }
            }
        }
        Some(matching)
    }
}

impl DmProblem for SchemaMatchingProblem {
    fn name(&self) -> String {
        format!("SchemaMatching({}x{})", self.instance.source.len(), self.instance.target.len())
    }

    fn n_vars(&self) -> usize {
        self.instance.source.len() * self.instance.target.len()
    }

    fn to_qubo(&self) -> QuboModel {
        let ns = self.instance.source.len();
        let nt = self.instance.target.len();
        let mut q = QuboModel::new(ns * nt);
        for i in 0..ns {
            for j in 0..nt {
                match self.instance.similarity[i][j] {
                    // Reward above-threshold pairs; sub-threshold pairs get a
                    // small penalty so they are not chosen gratuitously.
                    Some(s) if s >= self.threshold => {
                        q.add_linear(self.var(i, j), -s);
                    }
                    Some(_) => {
                        q.add_linear(self.var(i, j), 0.1);
                    }
                    // Type-incompatible: hard exclusion.
                    None => {
                        q.add_linear(self.var(i, j), self.penalty_weight);
                    }
                }
            }
        }
        for i in 0..ns {
            let vars: Vec<usize> = (0..nt).map(|j| self.var(i, j)).collect();
            penalty::at_most_one(&mut q, &vars, self.penalty_weight);
        }
        for j in 0..nt {
            let vars: Vec<usize> = (0..ns).map(|i| self.var(i, j)).collect();
            penalty::at_most_one(&mut q, &vars, self.penalty_weight);
        }
        q
    }

    fn decode(&self, bits: &[bool]) -> Decoded {
        match self.matching(bits).and_then(|m| {
            let score = self.instance.score(&m)?;
            Some((m, score))
        }) {
            Some((m, score)) => Decoded {
                feasible: true,
                // DmProblem minimizes; similarity is a reward.
                objective: -score,
                summary: format!("{m:?}"),
            },
            None => Decoded {
                feasible: false,
                objective: f64::INFINITY,
                summary: "not a one-to-one compatible matching".into(),
            },
        }
    }

    fn repair(&self, bits: &[bool]) -> Vec<bool> {
        // Keep selected pairs sorted by similarity, dropping violators.
        let ns = self.instance.source.len();
        let nt = self.instance.target.len();
        let mut selected: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..ns {
            for j in 0..nt {
                if bits[self.var(i, j)] {
                    if let Some(s) = self.instance.similarity[i][j] {
                        selected.push((i, j, s));
                    }
                }
            }
        }
        selected.sort_by(|a, b| b.2.total_cmp(&a.2));
        let mut out = vec![false; ns * nt];
        let mut used_s = vec![false; ns];
        let mut used_t = vec![false; nt];
        for (i, j, _) in selected {
            if !used_s[i] && !used_t[j] {
                used_s[i] = true;
                used_t[j] = true;
                out[self.var(i, j)] = true;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn similarity_ranks_related_names_higher() {
        let same = name_similarity("customer_id", "customerid");
        let related = name_similarity("customer_id", "cstmr_d");
        let unrelated = name_similarity("customer_id", "shipping_city");
        assert!(same > related, "{same} vs {related}");
        assert!(related > unrelated, "{related} vs {unrelated}");
    }

    #[test]
    fn exact_matching_on_tiny_instance() {
        let source = Schema::new(&[("id", DataType::Number), ("name", DataType::Text)]);
        let target = Schema::new(&[("name", DataType::Text), ("id", DataType::Number)]);
        let inst = MatchingInstance::new(source, target);
        let (m, score) = inst.exact_matching();
        assert_eq!(m, vec![Some(1), Some(0)]);
        assert!((score - 2.0).abs() < 1e-9);
    }

    #[test]
    fn type_incompatible_pairs_are_excluded() {
        let source = Schema::new(&[("amount", DataType::Number)]);
        let target = Schema::new(&[("amount", DataType::Text)]);
        let inst = MatchingInstance::new(source, target);
        assert!(inst.similarity[0][0].is_none());
        let (m, score) = inst.exact_matching();
        assert_eq!(m, vec![None]);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn qubo_optimum_matches_exact_dp() {
        let mut rng = StdRng::seed_from_u64(11);
        let (inst, _) = generate_benchmark(4, 1, &mut rng);
        let (_, dp_score) = inst.exact_matching();
        let problem = SchemaMatchingProblem::new(inst);
        let res = solve_exact(&problem.to_qubo());
        let decoded = problem.decode(&res.bits);
        assert!(decoded.feasible);
        // QUBO maximizes thresholded similarity; it can at most match DP.
        assert!(
            -decoded.objective <= dp_score + 1e-9,
            "qubo score {} vs dp {dp_score}",
            -decoded.objective
        );
        // And it should recover most of it.
        assert!(-decoded.objective >= 0.7 * dp_score, "qubo too weak");
    }

    #[test]
    fn benchmark_ground_truth_is_recoverable() {
        let mut rng = StdRng::seed_from_u64(3);
        let (inst, truth) = generate_benchmark(6, 2, &mut rng);
        let (pred, _) = inst.exact_matching();
        let (precision, recall) = precision_recall(&pred, &truth);
        assert!(precision >= 0.6, "precision {precision}");
        assert!(recall >= 0.6, "recall {recall}");
    }

    #[test]
    fn repair_produces_feasible_matchings() {
        let mut rng = StdRng::seed_from_u64(7);
        let (inst, _) = generate_benchmark(4, 0, &mut rng);
        let problem = SchemaMatchingProblem::new(inst);
        let all = vec![true; problem.n_vars()];
        let repaired = problem.repair(&all);
        assert!(problem.decode(&repaired).feasible);
    }

    #[test]
    fn precision_recall_edge_cases() {
        assert_eq!(precision_recall(&[None], &[None]), (1.0, 1.0));
        assert_eq!(precision_recall(&[Some(0)], &[Some(0)]), (1.0, 1.0));
        let (p, r) = precision_recall(&[Some(1), None], &[Some(0), Some(1)]);
        assert_eq!(p, 0.0);
        assert_eq!(r, 0.0);
    }
}
