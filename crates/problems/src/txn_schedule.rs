//! Transaction scheduling as a QUBO — Bittner & Groppe \[29\], \[30\], plus the
//! Grover-search variant of Groppe & Groppe \[31\]; the transaction-management
//! row of Table I.
//!
//! The model ("avoiding blocking by scheduling transactions"): each
//! transaction holds conservative-2PL locks for its whole duration, so
//! conflicting transactions must not overlap in time. Variables `x_{t,s}`
//! place transaction `t` at start slot `s`; one-hot per transaction,
//! quadratic penalties on overlapping conflicting placements, and a
//! start-time objective that pushes work early (the makespan proxy of
//! \[29\]).

use qdm_algos::grover::durr_hoyer_minimum;
use qdm_core::problem::{Decoded, DmProblem};
use qdm_db::txn::{greedy_schedule, Transaction, TxnSchedule};
use qdm_qubo::model::QuboModel;
use qdm_qubo::penalty;
use rand::Rng;

/// A transaction-scheduling problem over a discrete slot horizon.
#[derive(Debug, Clone)]
pub struct TxnScheduleProblem {
    /// The workload.
    pub txns: Vec<Transaction>,
    /// Number of available start slots (horizon).
    pub horizon: usize,
    /// Penalty weight for one-hot and conflict constraints.
    pub penalty_weight: f64,
}

impl TxnScheduleProblem {
    /// Wraps a workload with a horizon and auto-scaled penalty.
    ///
    /// # Panics
    /// Panics if the horizon cannot even hold the longest transaction.
    pub fn new(txns: Vec<Transaction>, horizon: usize) -> Self {
        let max_dur = txns.iter().map(|t| t.duration).max().unwrap_or(1);
        assert!(horizon >= max_dur, "horizon shorter than longest transaction");
        // The objective is sum of start slots, bounded by n * horizon.
        let penalty_weight = 2.0 * (txns.len() * horizon) as f64;
        Self { txns, horizon, penalty_weight }
    }

    #[inline]
    fn var(&self, txn: usize, slot: usize) -> usize {
        txn * self.horizon + slot
    }

    /// Extracts the schedule from bits if every transaction has exactly one
    /// start slot.
    pub fn schedule(&self, bits: &[bool]) -> Option<TxnSchedule> {
        let mut start = vec![0usize; self.txns.len()];
        for (t, s) in start.iter_mut().enumerate() {
            let slots: Vec<usize> = (0..self.horizon).filter(|&sl| bits[self.var(t, sl)]).collect();
            if slots.len() != 1 {
                return None;
            }
            *s = slots[0];
        }
        Some(TxnSchedule { start })
    }

    /// Serial makespan (the worst reasonable baseline).
    pub fn serial_makespan(&self) -> usize {
        self.txns.iter().map(|t| t.duration).sum()
    }
}

impl DmProblem for TxnScheduleProblem {
    fn name(&self) -> String {
        format!("TxnSchedule({} txns, {} slots)", self.txns.len(), self.horizon)
    }

    fn n_vars(&self) -> usize {
        self.txns.len() * self.horizon
    }

    fn to_qubo(&self) -> QuboModel {
        let n = self.txns.len();
        let mut q = QuboModel::new(n * self.horizon);
        // Objective: prefer early starts (quadratic growth approximates
        // makespan pressure); also forbid starts that would overrun the
        // horizon.
        for (t, txn) in self.txns.iter().enumerate() {
            for s in 0..self.horizon {
                if s + txn.duration > self.horizon {
                    q.add_linear(self.var(t, s), self.penalty_weight);
                } else {
                    let finish = (s + txn.duration) as f64;
                    q.add_linear(self.var(t, s), finish * finish / self.horizon as f64);
                }
            }
        }
        // Conflicting transactions must not overlap.
        for (a, ta) in self.txns.iter().enumerate() {
            for (b, tb) in self.txns.iter().enumerate().skip(a + 1) {
                if !ta.conflicts_with(tb) {
                    continue;
                }
                for sa in 0..self.horizon {
                    for sb in 0..self.horizon {
                        let overlap = sa < sb + tb.duration && sb < sa + ta.duration;
                        if overlap {
                            q.add_quadratic(self.var(a, sa), self.var(b, sb), self.penalty_weight);
                        }
                    }
                }
            }
        }
        // One start slot per transaction.
        for t in 0..n {
            let vars: Vec<usize> = (0..self.horizon).map(|s| self.var(t, s)).collect();
            penalty::exactly_one(&mut q, &vars, self.penalty_weight);
        }
        q
    }

    fn decode(&self, bits: &[bool]) -> Decoded {
        match self.schedule(bits) {
            Some(schedule) if schedule.is_conflict_free(&self.txns) => {
                let makespan = schedule.makespan(&self.txns);
                Decoded {
                    feasible: makespan <= self.horizon,
                    objective: makespan as f64,
                    summary: format!("starts {:?}", schedule.start),
                }
            }
            Some(schedule) => Decoded {
                feasible: false,
                objective: f64::INFINITY,
                summary: format!("conflicting overlap in {:?}", schedule.start),
            },
            None => Decoded {
                feasible: false,
                objective: f64::INFINITY,
                summary: "one-hot violation".into(),
            },
        }
    }

    fn repair(&self, bits: &[bool]) -> Vec<bool> {
        // Derive a priority order from the (possibly broken) assignment:
        // earliest claimed slot first, unplaced transactions last.
        let mut priority: Vec<(usize, usize)> = (0..self.txns.len())
            .map(|t| {
                let first =
                    (0..self.horizon).find(|&s| bits[self.var(t, s)]).unwrap_or(self.horizon);
                (first, t)
            })
            .collect();
        priority.sort_unstable();
        let order: Vec<usize> = priority.into_iter().map(|(_, t)| t).collect();
        let schedule = greedy_schedule(&self.txns, &order);
        let mut out = vec![false; self.n_vars()];
        for (t, &s) in schedule.start.iter().enumerate() {
            out[self.var(t, s.min(self.horizon - 1))] = true;
        }
        out
    }
}

/// Result of the Grover schedule search.
#[derive(Debug, Clone)]
pub struct GroverScheduleResult {
    /// Best schedule found.
    pub schedule: TxnSchedule,
    /// Its makespan.
    pub makespan: usize,
    /// Quantum oracle queries consumed.
    pub quantum_queries: u64,
}

/// The Groppe & Groppe \[31\] route: encode schedules as bitstrings
/// (`bits_per_txn` bits of start slot per transaction) and run Dürr–Høyer
/// minimum finding over makespan (+ conflict penalties) via Grover search.
///
/// # Panics
/// Panics if the register `txns.len() * bits_per_txn` exceeds 20 qubits.
pub fn grover_schedule_search(
    txns: &[Transaction],
    bits_per_txn: usize,
    rng: &mut impl Rng,
) -> GroverScheduleResult {
    let n_qubits = txns.len() * bits_per_txn;
    assert!(n_qubits <= 20, "Grover register too wide ({n_qubits} qubits)");
    let horizon = 1usize << bits_per_txn;
    let decode = |index: usize| -> TxnSchedule {
        let start =
            (0..txns.len()).map(|t| (index >> (t * bits_per_txn)) & (horizon - 1)).collect();
        TxnSchedule { start }
    };
    let total: usize = txns.iter().map(|t| t.duration).sum();
    let big = (total + horizon) as f64;
    let key = |index: usize| -> f64 {
        let s = decode(index);
        if s.is_conflict_free(txns) {
            s.makespan(txns) as f64
        } else {
            // Penalize by the number of violated pairs so the landscape
            // still guides the threshold search.
            let mut violations = 0;
            for (i, a) in txns.iter().enumerate() {
                for b in txns.iter().skip(i + 1) {
                    if a.conflicts_with(b) {
                        let (sa, ea) = (s.start[a.id], s.start[a.id] + a.duration);
                        let (sb, eb) = (s.start[b.id], s.start[b.id] + b.duration);
                        if sa < eb && sb < ea {
                            violations += 1;
                        }
                    }
                }
            }
            big + violations as f64
        }
    };
    let res = durr_hoyer_minimum(n_qubits, key, rng);
    let schedule = decode(res.index);
    GroverScheduleResult {
        makespan: schedule.makespan(txns),
        schedule,
        quantum_queries: res.quantum_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_db::txn::serial_schedule;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn txn(id: usize, reads: &[usize], writes: &[usize], dur: usize) -> Transaction {
        Transaction { id, reads: reads.to_vec(), writes: writes.to_vec(), duration: dur }
    }

    /// Two conflicting transactions and one independent one.
    fn workload() -> Vec<Transaction> {
        vec![txn(0, &[], &[0], 2), txn(1, &[0], &[], 2), txn(2, &[], &[5], 1)]
    }

    #[test]
    fn qubo_optimum_is_a_valid_non_blocking_schedule() {
        let problem = TxnScheduleProblem::new(workload(), 4);
        let res = solve_exact(&problem.to_qubo());
        let decoded = problem.decode(&res.bits);
        assert!(decoded.feasible, "decoded: {decoded:?}");
        // Conflicting 0 and 1 serialize -> makespan 4; txn 2 fits inside.
        assert!((decoded.objective - 4.0).abs() < 1e-9, "makespan {}", decoded.objective);
    }

    #[test]
    fn qubo_beats_serial_when_parallelism_exists() {
        let txns = vec![txn(0, &[], &[0], 2), txn(1, &[], &[1], 2), txn(2, &[], &[2], 2)];
        let serial = serial_schedule(&txns).makespan(&txns);
        let problem = TxnScheduleProblem::new(txns, 3);
        let res = solve_exact(&problem.to_qubo());
        let decoded = problem.decode(&res.bits);
        assert!(decoded.feasible);
        assert!((decoded.objective - 2.0).abs() < 1e-9);
        assert_eq!(serial, 6);
    }

    #[test]
    fn infeasible_overlap_is_rejected() {
        let problem = TxnScheduleProblem::new(workload(), 4);
        // Both conflicting transactions at slot 0.
        let mut bits = vec![false; problem.n_vars()];
        bits[problem.var(0, 0)] = true;
        bits[problem.var(1, 0)] = true;
        bits[problem.var(2, 0)] = true;
        let d = problem.decode(&bits);
        assert!(!d.feasible);
    }

    #[test]
    fn repair_always_yields_valid_schedule() {
        let problem = TxnScheduleProblem::new(workload(), 6);
        for bits in [vec![false; problem.n_vars()], vec![true; problem.n_vars()]] {
            let repaired = problem.repair(&bits);
            let d = problem.decode(&repaired);
            assert!(d.feasible, "repair failed: {d:?}");
        }
    }

    #[test]
    fn grover_schedule_search_finds_optimal_makespan() {
        let mut rng = StdRng::seed_from_u64(4);
        let txns = workload();
        let res = grover_schedule_search(&txns, 2, &mut rng);
        assert!(res.schedule.is_conflict_free(&txns));
        assert_eq!(res.makespan, 4);
        assert!(res.quantum_queries > 0);
    }

    #[test]
    fn horizon_validation() {
        let result =
            std::panic::catch_unwind(|| TxnScheduleProblem::new(vec![txn(0, &[], &[0], 5)], 3));
        assert!(result.is_err());
    }
}
