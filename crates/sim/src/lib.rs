//! # qdm-sim — gate-based quantum computer simulator
//!
//! The gate-model substrate for the reproduction of *"Quantum Data
//! Management: From Theory to Opportunities"* (ICDE 2024). Every gate-based
//! pipeline in the paper's Table I (QAOA, VQE, VQC, Grover) executes on this
//! simulator; the quantum-internet substrate (`qdm-net`) uses it for
//! teleportation and nonlocal games.
//!
//! ## Layout
//! - [`complex`] — in-repo complex arithmetic.
//! - [`state`] — dense state vectors (qubit 0 = least-significant bit),
//!   measurement, sampling, diagonal operators, Kraus trajectories.
//! - [`gates`] — standard gate matrices.
//! - [`circuit`] — circuit IR with depth/gate-count accounting.
//! - [`noise`] — noise channels and trajectory execution (Sec. III-C.3).
//! - [`density`] — exact density-matrix evolution for small registers.
//! - [`states`] — Bell (Example IV.1), GHZ, and W state constructors.
//!
//! ## Example: the paper's Example II.1
//! ```
//! use qdm_sim::prelude::*;
//!
//! let mut psi = StateVector::new(1);
//! psi.apply_single(0, &gates::hadamard());
//! assert!((psi.probability(0) - 0.5).abs() < 1e-12);
//! assert!((psi.probability(1) - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod complex;
pub mod density;
pub mod error;
pub mod gates;
pub mod noise;
pub mod pauli;
pub mod state;
pub mod states;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::circuit::{Circuit, Gate};
    pub use crate::complex::{Complex64, C_I, C_ONE, C_ZERO};
    pub use crate::density::DensityMatrix;
    pub use crate::error::SimError;
    pub use crate::gates;
    pub use crate::noise::{NoiseChannel, NoiseModel};
    pub use crate::pauli::{apply_pauli_rotation, Pauli, PauliHamiltonian, PauliString};
    pub use crate::state::{bitstring, StateVector, MAX_DENSE_QUBITS};
    pub use crate::states::{bell_state, ghz_circuit, ghz_state, w_state, BellState};
}

pub use prelude::*;
