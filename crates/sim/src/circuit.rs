//! Quantum circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Gate`]s over a fixed-width register.
//! Circuits can be executed on a [`StateVector`], inverted, composed, and
//! costed (gate counts / depth), which is what the device-constraint analysis
//! of Sec. III-C.3 needs.

use crate::gates::{self, Matrix2};
use crate::state::StateVector;

/// One gate application in a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard on a qubit.
    H(usize),
    /// Pauli-X on a qubit.
    X(usize),
    /// Pauli-Y on a qubit.
    Y(usize),
    /// Pauli-Z on a qubit.
    Z(usize),
    /// S phase gate.
    S(usize),
    /// S-dagger.
    Sdg(usize),
    /// T gate.
    T(usize),
    /// T-dagger.
    Tdg(usize),
    /// X rotation by an angle.
    Rx(usize, f64),
    /// Y rotation by an angle.
    Ry(usize, f64),
    /// Z rotation by an angle.
    Rz(usize, f64),
    /// Phase gate diag(1, e^{i phi}).
    Phase(usize, f64),
    /// Controlled-NOT (control, target).
    Cnot(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// Controlled phase (control, target, phi).
    CPhase(usize, usize, f64),
    /// Two-qubit ZZ interaction `e^{-i theta Z Z / 2}` (used by QAOA).
    Rzz(usize, usize, f64),
    /// Swap two qubits.
    Swap(usize, usize),
    /// Toffoli gate (control, control, target).
    Ccx(usize, usize, usize),
    /// Z on `target` controlled on every listed qubit being one.
    Mcz(Vec<usize>, usize),
    /// Arbitrary single-qubit unitary.
    Unitary(usize, Matrix2),
}

impl Gate {
    /// The set of qubits the gate touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Phase(q, _)
            | Gate::Unitary(q, _) => vec![*q],
            Gate::Cnot(a, b)
            | Gate::Cz(a, b)
            | Gate::CPhase(a, b, _)
            | Gate::Rzz(a, b, _)
            | Gate::Swap(a, b) => vec![*a, *b],
            Gate::Ccx(a, b, c) => vec![*a, *b, *c],
            Gate::Mcz(cs, t) => {
                let mut v = cs.clone();
                v.push(*t);
                v
            }
        }
    }

    /// True if the gate acts on two or more qubits (entangling capability).
    pub fn is_multi_qubit(&self) -> bool {
        self.qubits().len() > 1
    }

    /// The inverse gate.
    pub fn dagger(&self) -> Gate {
        match self {
            Gate::S(q) => Gate::Sdg(*q),
            Gate::Sdg(q) => Gate::S(*q),
            Gate::T(q) => Gate::Tdg(*q),
            Gate::Tdg(q) => Gate::T(*q),
            Gate::Rx(q, t) => Gate::Rx(*q, -t),
            Gate::Ry(q, t) => Gate::Ry(*q, -t),
            Gate::Rz(q, t) => Gate::Rz(*q, -t),
            Gate::Phase(q, t) => Gate::Phase(*q, -t),
            Gate::CPhase(a, b, t) => Gate::CPhase(*a, *b, -t),
            Gate::Rzz(a, b, t) => Gate::Rzz(*a, *b, -t),
            Gate::Unitary(q, m) => Gate::Unitary(*q, gates::mat2_dagger(m)),
            // Self-inverse gates.
            g => g.clone(),
        }
    }

    /// Applies the gate to a state vector.
    pub fn apply(&self, state: &mut StateVector) {
        match self {
            Gate::H(q) => state.apply_single(*q, &gates::hadamard()),
            Gate::X(q) => state.apply_single(*q, &gates::pauli_x()),
            Gate::Y(q) => state.apply_single(*q, &gates::pauli_y()),
            Gate::Z(q) => state.apply_single(*q, &gates::pauli_z()),
            Gate::S(q) => state.apply_single(*q, &gates::s_gate()),
            Gate::Sdg(q) => state.apply_single(*q, &gates::s_dagger()),
            Gate::T(q) => state.apply_single(*q, &gates::t_gate()),
            Gate::Tdg(q) => state.apply_single(*q, &gates::t_dagger()),
            Gate::Rx(q, t) => state.apply_single(*q, &gates::rx(*t)),
            Gate::Ry(q, t) => state.apply_single(*q, &gates::ry(*t)),
            Gate::Rz(q, t) => state.apply_single(*q, &gates::rz(*t)),
            Gate::Phase(q, t) => state.apply_single(*q, &gates::phase(*t)),
            Gate::Cnot(c, t) => state.apply_controlled(&[*c], *t, &gates::pauli_x()),
            Gate::Cz(c, t) => state.apply_controlled(&[*c], *t, &gates::pauli_z()),
            Gate::CPhase(c, t, phi) => state.apply_controlled(&[*c], *t, &gates::phase(*phi)),
            Gate::Rzz(a, b, theta) => {
                let (ba, bb) = (1usize << a, 1usize << b);
                let half = theta / 2.0;
                state.apply_diagonal_phase(|i| {
                    let za = if i & ba == 0 { 1.0 } else { -1.0 };
                    let zb = if i & bb == 0 { 1.0 } else { -1.0 };
                    -half * za * zb
                });
            }
            Gate::Swap(a, b) => state.apply_swap(*a, *b),
            Gate::Ccx(a, b, t) => state.apply_controlled(&[*a, *b], *t, &gates::pauli_x()),
            Gate::Mcz(cs, t) => state.apply_controlled(cs, *t, &gates::pauli_z()),
            Gate::Unitary(q, m) => state.apply_single(*q, m),
        }
    }
}

/// An ordered gate list over a fixed register width.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Self { n_qubits, gates: Vec::new() }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total gate count.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of gates touching two or more qubits (the dominant hardware
    /// cost on NISQ devices).
    pub fn multi_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_multi_qubit()).count()
    }

    /// Circuit depth: length of the longest chain of gates under the
    /// constraint that gates touching a common qubit cannot overlap.
    pub fn depth(&self) -> usize {
        let mut layer_of_qubit = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let layer = qs.iter().map(|&q| layer_of_qubit[q]).max().unwrap_or(0) + 1;
            for q in qs {
                layer_of_qubit[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Appends a gate, validating qubit indices.
    ///
    /// # Panics
    /// Panics if the gate references a qubit outside the register.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for q in gate.qubits() {
            assert!(q < self.n_qubits, "gate qubit {q} out of range");
        }
        self.gates.push(gate);
        self
    }

    /// Appends all gates of `other`.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits, "circuit width mismatch");
        self.gates.extend(other.gates.iter().cloned());
        self
    }

    /// The inverse circuit (reversed gate order, each gate inverted).
    pub fn dagger(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::dagger).collect(),
        }
    }

    // Builder helpers -------------------------------------------------------

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }
    /// Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }
    /// Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }
    /// Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }
    /// X rotation.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(q, theta))
    }
    /// Y rotation.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(q, theta))
    }
    /// Z rotation.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(q, theta))
    }
    /// CNOT.
    pub fn cnot(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Cnot(c, t))
    }
    /// Controlled-Z.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::Cz(c, t))
    }
    /// ZZ interaction.
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rzz(a, b, theta))
    }
    /// Hadamard on every qubit.
    pub fn h_all(&mut self) -> &mut Self {
        for q in 0..self.n_qubits {
            self.gates.push(Gate::H(q));
        }
        self
    }

    /// Runs the circuit on a fresh `|0...0>` register and returns the state.
    pub fn run(&self) -> StateVector {
        let mut state = StateVector::new(self.n_qubits);
        self.apply_to(&mut state);
        state
    }

    /// Applies the circuit to an existing state.
    ///
    /// # Panics
    /// Panics if the state width differs from the circuit width.
    pub fn apply_to(&self, state: &mut StateVector) {
        assert_eq!(state.n_qubits(), self.n_qubits, "state/circuit width mismatch");
        for g in &self.gates {
            g.apply(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn bell_circuit_runs() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = c.run();
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability(3) - 0.5).abs() < EPS);
    }

    #[test]
    fn dagger_undoes_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rz(2, 0.7).rzz(1, 2, -0.3).ry(0, 1.1).cz(0, 2);
        let mut s = c.run();
        c.dagger().apply_to(&mut s);
        assert!((s.probability(0) - 1.0).abs() < EPS, "p0={}", s.probability(0));
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // all parallel -> depth 1
        assert_eq!(c.depth(), 1);
        c.cnot(0, 1).cnot(2, 3); // parallel -> depth 2
        assert_eq!(c.depth(), 2);
        c.cnot(1, 2); // serializes -> depth 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn gate_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).push(Gate::Ccx(0, 1, 2));
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.multi_qubit_gate_count(), 2);
    }

    #[test]
    fn rzz_matches_cnot_rz_cnot_decomposition() {
        let theta = 0.9;
        let mut direct = Circuit::new(2);
        direct.h_all().rzz(0, 1, theta);
        let mut decomposed = Circuit::new(2);
        decomposed.h_all().cnot(0, 1).rz(1, theta).cnot(0, 1);
        let a = direct.run();
        let b = decomposed.run();
        assert!((a.fidelity(&b) - 1.0).abs() < EPS);
    }

    #[test]
    fn mcz_flips_only_all_ones() {
        let mut c = Circuit::new(3);
        c.h_all().push(Gate::Mcz(vec![0, 1], 2));
        let s = c.run();
        for i in 0..8 {
            let expected_sign = if i == 0b111 { -1.0 } else { 1.0 };
            assert!((s.amplitude(i).re - expected_sign / 8f64.sqrt()).abs() < EPS);
        }
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.extend(&b);
        assert_eq!(a.gate_count(), 2);
        let s = a.run();
        assert!((s.probability(3) - 0.5).abs() < EPS);
    }
}
