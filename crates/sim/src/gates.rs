//! Standard quantum gate matrices.
//!
//! Single-qubit gates are represented as dense 2x2 matrices in row-major
//! order (`m[row][col]`), two-qubit gates as 4x4 matrices over the basis
//! `|t c>` ordering used by [`crate::state::StateVector::apply_two`].

use crate::complex::{Complex64, C_I, C_ONE, C_ZERO};

/// A 2x2 complex matrix: the representation of every single-qubit gate.
pub type Matrix2 = [[Complex64; 2]; 2];
/// A 4x4 complex matrix: the representation of every two-qubit gate.
pub type Matrix4 = [[Complex64; 4]; 4];

/// `1/sqrt(2)`, the Hadamard normalization.
pub const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Identity gate.
#[inline]
pub fn identity() -> Matrix2 {
    [[C_ONE, C_ZERO], [C_ZERO, C_ONE]]
}

/// Pauli-X (NOT) gate.
#[inline]
pub fn pauli_x() -> Matrix2 {
    [[C_ZERO, C_ONE], [C_ONE, C_ZERO]]
}

/// Pauli-Y gate.
#[inline]
pub fn pauli_y() -> Matrix2 {
    [[C_ZERO, -C_I], [C_I, C_ZERO]]
}

/// Pauli-Z gate.
#[inline]
pub fn pauli_z() -> Matrix2 {
    [[C_ONE, C_ZERO], [C_ZERO, -C_ONE]]
}

/// Hadamard gate, the superposition creator of Example II.1.
#[inline]
pub fn hadamard() -> Matrix2 {
    let h = Complex64::real(FRAC_1_SQRT_2);
    [[h, h], [h, -h]]
}

/// Phase gate S = diag(1, i).
#[inline]
pub fn s_gate() -> Matrix2 {
    [[C_ONE, C_ZERO], [C_ZERO, C_I]]
}

/// S-dagger = diag(1, -i).
#[inline]
pub fn s_dagger() -> Matrix2 {
    [[C_ONE, C_ZERO], [C_ZERO, -C_I]]
}

/// T gate = diag(1, e^{i pi/4}).
#[inline]
pub fn t_gate() -> Matrix2 {
    [[C_ONE, C_ZERO], [C_ZERO, Complex64::cis(std::f64::consts::FRAC_PI_4)]]
}

/// T-dagger = diag(1, e^{-i pi/4}).
#[inline]
pub fn t_dagger() -> Matrix2 {
    [[C_ONE, C_ZERO], [C_ZERO, Complex64::cis(-std::f64::consts::FRAC_PI_4)]]
}

/// Rotation about the X axis by angle `theta`.
#[inline]
pub fn rx(theta: f64) -> Matrix2 {
    let c = Complex64::real((theta / 2.0).cos());
    let s = Complex64::new(0.0, -(theta / 2.0).sin());
    [[c, s], [s, c]]
}

/// Rotation about the Y axis by angle `theta`.
#[inline]
pub fn ry(theta: f64) -> Matrix2 {
    let c = Complex64::real((theta / 2.0).cos());
    let s = (theta / 2.0).sin();
    [[c, Complex64::real(-s)], [Complex64::real(s), c]]
}

/// Rotation about the Z axis by angle `theta` (symmetric-phase convention).
#[inline]
pub fn rz(theta: f64) -> Matrix2 {
    [[Complex64::cis(-theta / 2.0), C_ZERO], [C_ZERO, Complex64::cis(theta / 2.0)]]
}

/// Phase gate diag(1, e^{i phi}).
#[inline]
pub fn phase(phi: f64) -> Matrix2 {
    [[C_ONE, C_ZERO], [C_ZERO, Complex64::cis(phi)]]
}

/// General single-qubit unitary `U3(theta, phi, lambda)` in the OpenQASM
/// convention.
#[inline]
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Matrix2 {
    let ct = (theta / 2.0).cos();
    let st = (theta / 2.0).sin();
    [
        [Complex64::real(ct), -Complex64::cis(lambda) * st],
        [Complex64::cis(phi) * st, Complex64::cis(phi + lambda) * ct],
    ]
}

/// Matrix product `a * b` of two single-qubit gates.
pub fn mat2_mul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[C_ZERO; 2]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// Conjugate transpose of a single-qubit gate.
pub fn mat2_dagger(m: &Matrix2) -> Matrix2 {
    [[m[0][0].conj(), m[1][0].conj()], [m[0][1].conj(), m[1][1].conj()]]
}

/// Checks `m * m^dagger == I` within `eps`.
pub fn is_unitary2(m: &Matrix2, eps: f64) -> bool {
    let p = mat2_mul(m, &mat2_dagger(m));
    let id = identity();
    p.iter()
        .zip(id.iter())
        .all(|(pr, ir)| pr.iter().zip(ir.iter()).all(|(a, b)| a.approx_eq(*b, eps)))
}

/// SWAP gate over basis ordering `|q2 q1>` (index = 2*b2 + b1).
pub fn swap() -> Matrix4 {
    let mut m = [[C_ZERO; 4]; 4];
    m[0][0] = C_ONE;
    m[1][2] = C_ONE;
    m[2][1] = C_ONE;
    m[3][3] = C_ONE;
    m
}

/// XX+YY interaction gate `e^{-i theta (XX+YY)/2}` used by some hardware-
/// efficient ansaetze (an "iSWAP-like" partial swap).
pub fn xy(theta: f64) -> Matrix4 {
    let mut m = [[C_ZERO; 4]; 4];
    let c = Complex64::real(theta.cos());
    let s = Complex64::new(0.0, -theta.sin());
    m[0][0] = C_ONE;
    m[3][3] = C_ONE;
    m[1][1] = c;
    m[2][2] = c;
    m[1][2] = s;
    m[2][1] = s;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn standard_gates_are_unitary() {
        for m in [
            identity(),
            pauli_x(),
            pauli_y(),
            pauli_z(),
            hadamard(),
            s_gate(),
            s_dagger(),
            t_gate(),
            t_dagger(),
            rx(0.7),
            ry(-1.3),
            rz(2.1),
            phase(0.9),
            u3(0.4, 1.1, -0.6),
        ] {
            assert!(is_unitary2(&m, EPS));
        }
    }

    #[test]
    fn pauli_gates_are_involutions() {
        for m in [pauli_x(), pauli_y(), pauli_z(), hadamard()] {
            let sq = mat2_mul(&m, &m);
            let id = identity();
            for r in 0..2 {
                for c in 0..2 {
                    assert!(sq[r][c].approx_eq(id[r][c], EPS));
                }
            }
        }
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s2 = mat2_mul(&s_gate(), &s_gate());
        let z = pauli_z();
        let t2 = mat2_mul(&t_gate(), &t_gate());
        let s = s_gate();
        for r in 0..2 {
            for c in 0..2 {
                assert!(s2[r][c].approx_eq(z[r][c], EPS));
                assert!(t2[r][c].approx_eq(s[r][c], EPS));
            }
        }
    }

    #[test]
    fn rotation_composition_adds_angles() {
        let a = mat2_mul(&rx(0.3), &rx(0.5));
        let b = rx(0.8);
        for r in 0..2 {
            for c in 0..2 {
                assert!(a[r][c].approx_eq(b[r][c], EPS));
            }
        }
    }

    #[test]
    fn dagger_inverts() {
        let m = u3(0.7, -0.2, 1.9);
        let p = mat2_mul(&m, &mat2_dagger(&m));
        assert!(p[0][0].approx_eq(C_ONE, EPS));
        assert!(p[1][1].approx_eq(C_ONE, EPS));
        assert!(p[0][1].is_negligible(EPS));
        assert!(p[1][0].is_negligible(EPS));
    }

    #[test]
    fn hadamard_maps_z_basis_to_x_basis() {
        let h = hadamard();
        // H|0> = (|0>+|1>)/sqrt(2): first column.
        assert!((h[0][0].re - FRAC_1_SQRT_2).abs() < EPS);
        assert!((h[1][0].re - FRAC_1_SQRT_2).abs() < EPS);
    }

    #[test]
    fn xy_at_zero_is_identity() {
        let m = xy(0.0);
        for (r, row) in m.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                let want = if r == c { C_ONE } else { C_ZERO };
                assert!(v.approx_eq(want, EPS));
            }
        }
    }
}
