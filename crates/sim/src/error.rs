//! Error types for the simulator crate.

use std::fmt;

/// Errors produced when constructing or manipulating simulator objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The amplitude vector length was not a power of two.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
    /// The state was not normalized within tolerance.
    NotNormalized,
    /// A register of this many qubits cannot be simulated densely.
    TooManyQubits {
        /// Requested register width.
        requested: usize,
        /// Maximum width supported by this build.
        max: usize,
    },
    /// A qubit index was out of range for the register.
    QubitOutOfRange {
        /// Offending index.
        qubit: usize,
        /// Register width.
        n_qubits: usize,
    },
    /// Two distinct qubits were required but the same index was given twice.
    DuplicateQubit {
        /// The duplicated index.
        qubit: usize,
    },
    /// A Kraus channel did not satisfy the completeness relation.
    InvalidChannel,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotPowerOfTwo { len } => {
                write!(f, "amplitude vector length {len} is not a power of two")
            }
            SimError::NotNormalized => write!(f, "state vector is not normalized"),
            SimError::TooManyQubits { requested, max } => {
                write!(f, "{requested} qubits requested but dense simulation caps at {max}")
            }
            SimError::QubitOutOfRange { qubit, n_qubits } => {
                write!(f, "qubit {qubit} out of range for {n_qubits}-qubit register")
            }
            SimError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} used twice where distinct qubits are required")
            }
            SimError::InvalidChannel => {
                write!(f, "Kraus operators do not form a trace-preserving channel")
            }
        }
    }
}

impl std::error::Error for SimError {}
