//! Constructors for the named entangled states used throughout the paper:
//! Bell states (Example IV.1), GHZ states (the GHZ game), and W states.

use crate::circuit::Circuit;
use crate::complex::Complex64;
use crate::state::StateVector;

/// The four Bell states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BellState {
    /// `(|00> + |11>)/sqrt(2)` — the paper's Example IV.1 state.
    PhiPlus,
    /// `(|00> - |11>)/sqrt(2)`.
    PhiMinus,
    /// `(|01> + |10>)/sqrt(2)`.
    PsiPlus,
    /// `(|01> - |10>)/sqrt(2)`.
    PsiMinus,
}

/// Builds one of the four Bell states over 2 qubits.
pub fn bell_state(which: BellState) -> StateVector {
    let mut c = Circuit::new(2);
    match which {
        BellState::PhiPlus => {
            c.h(0).cnot(0, 1);
        }
        BellState::PhiMinus => {
            c.x(0).h(0).cnot(0, 1);
        }
        BellState::PsiPlus => {
            c.h(0).cnot(0, 1).x(0);
        }
        BellState::PsiMinus => {
            c.x(0).h(0).cnot(0, 1).x(0);
        }
    }
    c.run()
}

/// The circuit preparing an `n`-qubit GHZ state `(|0..0> + |1..1>)/sqrt(2)`.
pub fn ghz_circuit(n: usize) -> Circuit {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cnot(q - 1, q);
    }
    c
}

/// An `n`-qubit GHZ state.
pub fn ghz_state(n: usize) -> StateVector {
    ghz_circuit(n).run()
}

/// An `n`-qubit W state `(|10..0> + |01..0> + ... + |00..1>)/sqrt(n)`.
pub fn w_state(n: usize) -> StateVector {
    assert!(n >= 1);
    let len = 1usize << n;
    let amp = Complex64::real(1.0 / (n as f64).sqrt());
    let mut amps = vec![Complex64::default(); len];
    for q in 0..n {
        amps[1 << q] = amp;
    }
    StateVector::from_amplitudes(amps).expect("w_state amplitudes are normalized")
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn phi_plus_matches_example_iv_1() {
        let s = bell_state(BellState::PhiPlus);
        assert!((s.amplitude(0b00).re - std::f64::consts::FRAC_1_SQRT_2).abs() < EPS);
        assert!((s.amplitude(0b11).re - std::f64::consts::FRAC_1_SQRT_2).abs() < EPS);
    }

    #[test]
    fn bell_states_are_mutually_orthogonal() {
        let all =
            [BellState::PhiPlus, BellState::PhiMinus, BellState::PsiPlus, BellState::PsiMinus];
        for (i, &a) in all.iter().enumerate() {
            for (j, &b) in all.iter().enumerate() {
                let f = bell_state(a).fidelity(&bell_state(b));
                if i == j {
                    assert!((f - 1.0).abs() < EPS);
                } else {
                    assert!(f < EPS, "{a:?} vs {b:?} fidelity {f}");
                }
            }
        }
    }

    #[test]
    fn ghz_state_has_two_outcomes() {
        let s = ghz_state(3);
        assert!((s.probability(0b000) - 0.5).abs() < EPS);
        assert!((s.probability(0b111) - 0.5).abs() < EPS);
        for i in 1..7 {
            assert!(s.probability(i) < EPS);
        }
    }

    #[test]
    fn w_state_uniform_over_single_excitations() {
        let s = w_state(4);
        for q in 0..4 {
            assert!((s.probability(1 << q) - 0.25).abs() < EPS);
        }
        assert!(s.probability(0) < EPS);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }
}
