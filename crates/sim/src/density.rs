//! Density-matrix simulator for exact mixed-state evolution.
//!
//! Complements the trajectory method in [`crate::noise`]: where trajectories
//! estimate channel outputs stochastically, the density matrix computes them
//! exactly, at the cost of `4^n` storage. Intended for small registers
//! (n <= 10), e.g. analyzing Werner states for the quantum-internet substrate.

use crate::complex::{Complex64, C_ZERO};
use crate::gates::Matrix2;
use crate::state::StateVector;

/// A density operator `rho` over `n_qubits`, stored dense row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    /// Row-major `dim x dim` entries.
    elems: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    pub fn new(n_qubits: usize) -> Self {
        Self::from_pure(&StateVector::new(n_qubits))
    }

    /// Builds `|psi><psi|` from a pure state.
    pub fn from_pure(psi: &StateVector) -> Self {
        let dim = psi.len();
        let mut elems = vec![C_ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                elems[r * dim + c] = psi.amplitude(r) * psi.amplitude(c).conj();
            }
        }
        Self { n_qubits: psi.n_qubits(), dim, elems }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let dim = 1usize << n_qubits;
        let mut elems = vec![C_ZERO; dim * dim];
        let p = Complex64::real(1.0 / dim as f64);
        for r in 0..dim {
            elems[r * dim + r] = p;
        }
        Self { n_qubits, dim, elems }
    }

    /// Convex mixture `w * self + (1-w) * other`.
    ///
    /// # Panics
    /// Panics if dimensions differ or `w` is outside `[0, 1]`.
    pub fn mix(&self, other: &Self, w: f64) -> Self {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        assert!((0.0..=1.0).contains(&w), "weight must be in [0,1]");
        let elems = self
            .elems
            .iter()
            .zip(other.elems.iter())
            .map(|(a, b)| a.scale(w) + b.scale(1.0 - w))
            .collect();
        Self { n_qubits: self.n_qubits, dim: self.dim, elems }
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Matrix dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element `rho[r][c]`.
    #[inline]
    pub fn element(&self, r: usize, c: usize) -> Complex64 {
        self.elems[r * self.dim + c]
    }

    /// Trace of the matrix (1 for a valid state).
    pub fn trace(&self) -> Complex64 {
        (0..self.dim).map(|r| self.element(r, r)).sum()
    }

    /// Purity `Tr(rho^2)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr(rho^2) = sum_{r,c} rho[r][c] * rho[c][r]; for Hermitian rho this
        // equals sum |rho[r][c]|^2.
        self.elems.iter().map(|e| e.norm_sqr()).sum()
    }

    /// Fidelity with a pure state: `<psi| rho |psi>`.
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(self.dim, psi.len(), "dimension mismatch");
        let mut acc = C_ZERO;
        for r in 0..self.dim {
            let mut row = C_ZERO;
            for c in 0..self.dim {
                row += self.element(r, c) * psi.amplitude(c);
            }
            acc += psi.amplitude(r).conj() * row;
        }
        acc.re
    }

    /// Measurement probability of basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.element(index, index).re
    }

    /// Applies a single-qubit unitary: `rho -> U rho U^dagger`.
    pub fn apply_single(&mut self, q: usize, m: &Matrix2) {
        assert!(q < self.n_qubits, "qubit {q} out of range");
        let step = 1usize << q;
        let dim = self.dim;
        // Left multiply by U on rows.
        for col in 0..dim {
            let mut base = 0;
            while base < dim {
                for j in base..base + step {
                    let a = self.elems[j * dim + col];
                    let b = self.elems[(j + step) * dim + col];
                    self.elems[j * dim + col] = m[0][0] * a + m[0][1] * b;
                    self.elems[(j + step) * dim + col] = m[1][0] * a + m[1][1] * b;
                }
                base += step << 1;
            }
        }
        // Right multiply by U^dagger on columns.
        for row in 0..dim {
            let mut base = 0;
            while base < dim {
                for j in base..base + step {
                    let a = self.elems[row * dim + j];
                    let b = self.elems[row * dim + j + step];
                    self.elems[row * dim + j] = a * m[0][0].conj() + b * m[0][1].conj();
                    self.elems[row * dim + j + step] = a * m[1][0].conj() + b * m[1][1].conj();
                }
                base += step << 1;
            }
        }
    }

    /// Applies a single-qubit Kraus channel exactly:
    /// `rho -> sum_k K_k rho K_k^dagger`.
    pub fn apply_kraus_single(&mut self, q: usize, kraus: &[Matrix2]) {
        let mut acc = vec![C_ZERO; self.dim * self.dim];
        for k in kraus {
            let mut branch = self.clone();
            branch.apply_single(q, k);
            for (a, b) in acc.iter_mut().zip(branch.elems.iter()) {
                *a += *b;
            }
        }
        self.elems = acc;
    }

    /// Applies a CNOT (control, target) unitary.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits && control != target);
        let cb = 1usize << control;
        let tb = 1usize << target;
        let dim = self.dim;
        let map = |i: usize| if i & cb != 0 { i ^ tb } else { i };
        let mut out = vec![C_ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                out[map(r) * dim + map(c)] = self.elems[r * dim + c];
            }
        }
        self.elems = out;
    }

    /// Partial trace keeping only the listed qubits (ascending order in the
    /// reduced system: `keep[0]` becomes qubit 0 of the result).
    pub fn partial_trace_keep(&self, keep: &[usize]) -> DensityMatrix {
        for &q in keep {
            assert!(q < self.n_qubits);
        }
        let k = keep.len();
        let kd = 1usize << k;
        let traced: Vec<usize> = (0..self.n_qubits).filter(|q| !keep.contains(q)).collect();
        let td = 1usize << traced.len();
        let expand = |kept_bits: usize, traced_bits: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &q) in keep.iter().enumerate() {
                if kept_bits & (1 << pos) != 0 {
                    idx |= 1 << q;
                }
            }
            for (pos, &q) in traced.iter().enumerate() {
                if traced_bits & (1 << pos) != 0 {
                    idx |= 1 << q;
                }
            }
            idx
        };
        let mut elems = vec![C_ZERO; kd * kd];
        for r in 0..kd {
            for c in 0..kd {
                let mut acc = C_ZERO;
                for t in 0..td {
                    acc += self.element(expand(r, t), expand(c, t));
                }
                elems[r * kd + c] = acc;
            }
        }
        DensityMatrix { n_qubits: k, dim: kd, elems }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gates;
    use crate::noise::NoiseChannel;

    const EPS: f64 = 1e-10;

    fn bell_rho() -> DensityMatrix {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        DensityMatrix::from_pure(&c.run())
    }

    #[test]
    fn pure_state_has_unit_purity_and_trace() {
        let rho = bell_rho();
        assert!((rho.trace().re - 1.0).abs() < EPS);
        assert!((rho.purity() - 1.0).abs() < EPS);
    }

    #[test]
    fn maximally_mixed_purity() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.purity() - 0.25).abs() < EPS);
        assert!((rho.trace().re - 1.0).abs() < EPS);
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_single(0, &gates::hadamard());
        rho.apply_cnot(0, 1);
        let bell = bell_rho();
        for r in 0..4 {
            for c in 0..4 {
                assert!(rho.element(r, c).approx_eq(bell.element(r, c), EPS));
            }
        }
    }

    #[test]
    fn depolarizing_drives_towards_mixed() {
        let mut rho = DensityMatrix::from_pure(&StateVector::new(1));
        rho.apply_kraus_single(0, &NoiseChannel::Depolarizing(0.75).kraus());
        // p=3/4 depolarizing on a single qubit yields the maximally mixed state.
        assert!((rho.probability(0) - 0.5).abs() < EPS);
        assert!((rho.purity() - 0.5).abs() < EPS);
    }

    #[test]
    fn partial_trace_of_bell_is_maximally_mixed() {
        let rho = bell_rho();
        let reduced = rho.partial_trace_keep(&[0]);
        assert_eq!(reduced.n_qubits(), 1);
        assert!((reduced.probability(0) - 0.5).abs() < EPS);
        assert!((reduced.purity() - 0.5).abs() < EPS);
    }

    #[test]
    fn mix_interpolates_probabilities() {
        let a = DensityMatrix::from_pure(&StateVector::basis_state(1, 0));
        let b = DensityMatrix::from_pure(&StateVector::basis_state(1, 1));
        let m = a.mix(&b, 0.25);
        assert!((m.probability(0) - 0.25).abs() < EPS);
        assert!((m.probability(1) - 0.75).abs() < EPS);
    }

    #[test]
    fn fidelity_with_pure_state() {
        let rho = bell_rho();
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        assert!((rho.fidelity_with_pure(&c.run()) - 1.0).abs() < EPS);
        let mixed = DensityMatrix::maximally_mixed(2);
        assert!((mixed.fidelity_with_pure(&c.run()) - 0.25).abs() < EPS);
    }

    #[test]
    fn amplitude_damping_exact_population() {
        let one = StateVector::basis_state(1, 1);
        let mut rho = DensityMatrix::from_pure(&one);
        rho.apply_kraus_single(0, &NoiseChannel::AmplitudeDamping(0.3).kraus());
        assert!((rho.probability(1) - 0.7).abs() < EPS);
    }
}
