//! Pauli-string observables and Hamiltonians.
//!
//! Ising cost functions are diagonal, but general quantum observables (and
//! the measurement bases of the nonlocal games) are tensor products of
//! Pauli operators. A [`PauliString`] is such a product with a real
//! coefficient; a [`PauliHamiltonian`] is a sum of them. Expectations are
//! computed exactly by rotating each qubit into the Z basis and reading
//! the diagonal — the same procedure hardware uses, minus the sampling.

use crate::complex::Complex64;
use crate::gates;
use crate::state::StateVector;
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A weighted tensor product of Pauli operators, e.g. `0.5 * X0 Z2`.
#[derive(Debug, Clone, PartialEq)]
pub struct PauliString {
    /// Real coefficient.
    pub coefficient: f64,
    /// `(qubit, operator)` pairs; omitted qubits carry identity.
    pub factors: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// Creates a weighted Pauli string, dropping identity factors.
    ///
    /// # Panics
    /// Panics if a qubit appears twice.
    pub fn new(coefficient: f64, factors: &[(usize, Pauli)]) -> Self {
        let mut seen = std::collections::HashSet::new();
        let factors: Vec<(usize, Pauli)> =
            factors.iter().copied().filter(|(_, p)| *p != Pauli::I).collect();
        for (q, _) in &factors {
            assert!(seen.insert(*q), "qubit {q} repeated in Pauli string");
        }
        Self { coefficient, factors }
    }

    /// The identity string (a constant energy shift).
    pub fn identity(coefficient: f64) -> Self {
        Self { coefficient, factors: Vec::new() }
    }

    /// Exact expectation `coeff * <psi| P |psi>`.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        if self.factors.is_empty() {
            return self.coefficient;
        }
        // Rotate into the Z basis: X -> H, Y -> S^dagger then H.
        let mut rotated = state.clone();
        let mut zmask = 0usize;
        for &(q, p) in &self.factors {
            match p {
                Pauli::X => rotated.apply_single(q, &gates::hadamard()),
                Pauli::Y => {
                    rotated.apply_single(q, &gates::s_dagger());
                    rotated.apply_single(q, &gates::hadamard());
                }
                Pauli::Z => {}
                Pauli::I => unreachable!("identities are stripped"),
            }
            zmask |= 1 << q;
        }
        let z = rotated.expectation_diagonal(|i| {
            if (i & zmask).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            }
        });
        self.coefficient * z
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}", self.coefficient)?;
        for (q, p) in &self.factors {
            write!(f, " {p:?}{q}")?;
        }
        Ok(())
    }
}

/// A sum of weighted Pauli strings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PauliHamiltonian {
    /// The terms.
    pub terms: Vec<PauliString>,
}

impl PauliHamiltonian {
    /// An empty (zero) Hamiltonian.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a term.
    pub fn add(&mut self, term: PauliString) -> &mut Self {
        self.terms.push(term);
        self
    }

    /// Exact expectation `<psi| H |psi>`.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.terms.iter().map(|t| t.expectation(state)).sum()
    }

    /// Number of non-identity terms (the measurement-group count a real
    /// device would need, before commuting-group optimization).
    pub fn n_terms(&self) -> usize {
        self.terms.iter().filter(|t| !t.factors.is_empty()).count()
    }

    /// The transverse-field Ising Hamiltonian
    /// `sum_{i<j} J_ij Z_i Z_j + sum_i h_i Z_i - g sum_i X_i` — the model a
    /// quantum annealer physically implements mid-anneal.
    pub fn transverse_ising(
        n: usize,
        couplings: &[((usize, usize), f64)],
        fields: &[f64],
        g: f64,
    ) -> Self {
        let mut h = Self::new();
        for &((i, j), w) in couplings {
            h.add(PauliString::new(w, &[(i, Pauli::Z), (j, Pauli::Z)]));
        }
        for (i, &hi) in fields.iter().enumerate() {
            if hi != 0.0 {
                h.add(PauliString::new(hi, &[(i, Pauli::Z)]));
            }
        }
        for i in 0..n {
            if g != 0.0 {
                h.add(PauliString::new(-g, &[(i, Pauli::X)]));
            }
        }
        h
    }
}

/// Applies `exp(-i * angle * P)` for a Pauli string `P` (unit coefficient
/// assumed; the string's coefficient scales the angle) — the Trotter step
/// primitive for simulating Hamiltonian dynamics.
pub fn apply_pauli_rotation(state: &mut StateVector, term: &PauliString, angle: f64) {
    // Basis-change into Z, apply the diagonal phase, change back.
    let theta = angle * term.coefficient;
    if term.factors.is_empty() {
        // Global phase only.
        let phase = Complex64::cis(-theta);
        let amps: Vec<Complex64> = state.amplitudes().iter().map(|a| *a * phase).collect();
        *state = StateVector::from_amplitudes(amps).expect("phase preserves norm");
        return;
    }
    let mut zmask = 0usize;
    for &(q, p) in &term.factors {
        match p {
            Pauli::X => state.apply_single(q, &gates::hadamard()),
            Pauli::Y => {
                state.apply_single(q, &gates::s_dagger());
                state.apply_single(q, &gates::hadamard());
            }
            _ => {}
        }
        zmask |= 1 << q;
    }
    state.apply_diagonal_phase(|i| {
        if (i & zmask).count_ones().is_multiple_of(2) {
            -theta
        } else {
            theta
        }
    });
    for &(q, p) in &term.factors {
        match p {
            Pauli::X => state.apply_single(q, &gates::hadamard()),
            Pauli::Y => {
                state.apply_single(q, &gates::hadamard());
                state.apply_single(q, &gates::s_gate());
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::{bell_state, BellState};

    const EPS: f64 = 1e-10;

    #[test]
    fn z_expectations_on_basis_states() {
        let s = StateVector::basis_state(2, 0b01);
        assert!((PauliString::new(1.0, &[(0, Pauli::Z)]).expectation(&s) + 1.0).abs() < EPS);
        assert!((PauliString::new(1.0, &[(1, Pauli::Z)]).expectation(&s) - 1.0).abs() < EPS);
        assert!(
            (PauliString::new(2.0, &[(0, Pauli::Z), (1, Pauli::Z)]).expectation(&s) + 2.0).abs()
                < EPS
        );
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut s = StateVector::new(1);
        s.apply_single(0, &gates::hadamard());
        assert!((PauliString::new(1.0, &[(0, Pauli::X)]).expectation(&s) - 1.0).abs() < EPS);
        assert!(PauliString::new(1.0, &[(0, Pauli::Z)]).expectation(&s).abs() < EPS);
    }

    #[test]
    fn bell_state_correlators() {
        // For |Phi+>: <XX> = 1, <YY> = -1, <ZZ> = 1 — the fingerprint used
        // in CHSH analysis.
        let s = bell_state(BellState::PhiPlus);
        let xx = PauliString::new(1.0, &[(0, Pauli::X), (1, Pauli::X)]);
        let yy = PauliString::new(1.0, &[(0, Pauli::Y), (1, Pauli::Y)]);
        let zz = PauliString::new(1.0, &[(0, Pauli::Z), (1, Pauli::Z)]);
        assert!((xx.expectation(&s) - 1.0).abs() < EPS);
        assert!((yy.expectation(&s) + 1.0).abs() < EPS);
        assert!((zz.expectation(&s) - 1.0).abs() < EPS);
    }

    #[test]
    fn hamiltonian_sums_terms() {
        let s = StateVector::basis_state(2, 0b00);
        let mut h = PauliHamiltonian::new();
        h.add(PauliString::identity(0.5))
            .add(PauliString::new(1.0, &[(0, Pauli::Z)]))
            .add(PauliString::new(-2.0, &[(1, Pauli::Z)]));
        assert!((h.expectation(&s) - (0.5 + 1.0 - 2.0)).abs() < EPS);
        assert_eq!(h.n_terms(), 2);
    }

    #[test]
    fn transverse_ising_ground_state_limits() {
        // g = 0: classical Ising, ground state is a basis state.
        let h0 = PauliHamiltonian::transverse_ising(2, &[((0, 1), -1.0)], &[0.0, 0.0], 0.0);
        let aligned = StateVector::basis_state(2, 0b00);
        assert!((h0.expectation(&aligned) + 1.0).abs() < EPS);
        // g -> inf limit: |++> minimizes -g sum X.
        let hx = PauliHamiltonian::transverse_ising(2, &[], &[0.0, 0.0], 1.0);
        let mut plus = StateVector::new(2);
        plus.apply_single(0, &gates::hadamard());
        plus.apply_single(1, &gates::hadamard());
        assert!((hx.expectation(&plus) + 2.0).abs() < EPS);
    }

    #[test]
    fn pauli_rotation_matches_rz_and_rx() {
        // exp(-i theta/2 Z) == RZ(theta).
        let theta = 0.7;
        let mut a = StateVector::new(1);
        a.apply_single(0, &gates::hadamard());
        let mut b = a.clone();
        apply_pauli_rotation(&mut a, &PauliString::new(1.0, &[(0, Pauli::Z)]), theta / 2.0);
        b.apply_single(0, &gates::rz(theta));
        assert!((a.fidelity(&b) - 1.0).abs() < EPS);
        // exp(-i theta/2 X) == RX(theta).
        let mut c = StateVector::basis_state(1, 0);
        let mut d = c.clone();
        apply_pauli_rotation(&mut c, &PauliString::new(1.0, &[(0, Pauli::X)]), theta / 2.0);
        d.apply_single(0, &gates::rx(theta));
        assert!((c.fidelity(&d) - 1.0).abs() < EPS);
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut s = bell_state(BellState::PsiMinus);
        apply_pauli_rotation(&mut s, &PauliString::new(0.8, &[(0, Pauli::Y), (1, Pauli::X)]), 1.3);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn duplicate_qubits_rejected() {
        PauliString::new(1.0, &[(0, Pauli::X), (0, Pauli::Z)]);
    }
}
