//! Dense state-vector representation of a quantum register.
//!
//! Basis convention: qubit `q` corresponds to bit `q` of the basis index,
//! i.e. **qubit 0 is the least significant bit**. A 3-qubit basis state
//! `|q2 q1 q0> = |0 1 0>` therefore has index `0b010 = 2`.

use crate::complex::{Complex64, C_ONE, C_ZERO};
use crate::error::SimError;
use crate::gates::{Matrix2, Matrix4};
use rand::Rng;
use std::collections::HashMap;

/// Hard cap on dense simulation width; 2^26 amplitudes = 1 GiB of `Complex64`.
pub const MAX_DENSE_QUBITS: usize = 26;

/// A pure quantum state over `n_qubits` qubits stored as `2^n` amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0...0>`.
    ///
    /// # Panics
    /// Panics if `n_qubits` exceeds [`MAX_DENSE_QUBITS`].
    pub fn new(n_qubits: usize) -> Self {
        Self::basis_state(n_qubits, 0)
    }

    /// Creates the computational basis state with the given index.
    ///
    /// # Panics
    /// Panics if `n_qubits > MAX_DENSE_QUBITS` or `index >= 2^n_qubits`.
    pub fn basis_state(n_qubits: usize, index: usize) -> Self {
        assert!(
            n_qubits <= MAX_DENSE_QUBITS,
            "{n_qubits} qubits exceeds dense cap {MAX_DENSE_QUBITS}"
        );
        let len = 1usize << n_qubits;
        assert!(index < len, "basis index {index} out of range for {n_qubits} qubits");
        let mut amps = vec![C_ZERO; len];
        amps[index] = C_ONE;
        Self { n_qubits, amps }
    }

    /// Creates the uniform superposition `H^{tensor n} |0...0>`.
    pub fn uniform(n_qubits: usize) -> Self {
        assert!(n_qubits <= MAX_DENSE_QUBITS);
        let len = 1usize << n_qubits;
        let a = Complex64::real(1.0 / (len as f64).sqrt());
        Self { n_qubits, amps: vec![a; len] }
    }

    /// Builds a state from explicit amplitudes, validating shape and norm.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Result<Self, SimError> {
        let len = amps.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(SimError::NotPowerOfTwo { len });
        }
        let n_qubits = len.trailing_zeros() as usize;
        if n_qubits > MAX_DENSE_QUBITS {
            return Err(SimError::TooManyQubits { requested: n_qubits, max: MAX_DENSE_QUBITS });
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if (norm - 1.0).abs() > 1e-8 {
            return Err(SimError::NotNormalized);
        }
        Ok(Self { n_qubits, amps })
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of amplitudes (`2^n_qubits`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always false: a state vector has at least one amplitude.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The amplitude of basis state `index`.
    #[inline]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// Read-only view of all amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Squared norm of the state (1 for a valid state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes in place; useful after non-unitary updates.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
    }

    /// Measurement probability of basis state `index`.
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// All measurement probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    #[inline]
    fn check_qubit(&self, q: usize) {
        assert!(q < self.n_qubits, "qubit {q} out of range for {}-qubit register", self.n_qubits);
    }

    /// Applies a single-qubit gate to qubit `q`.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn apply_single(&mut self, q: usize, m: &Matrix2) {
        self.check_qubit(q);
        apply_single_to(&mut self.amps, q, m);
    }

    /// Applies a single-qubit gate to the target qubit, controlled on all
    /// `controls` being `|1>`.
    ///
    /// # Panics
    /// Panics if any index is out of range or `target` appears in `controls`.
    pub fn apply_controlled(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        self.check_qubit(target);
        let mut cmask = 0usize;
        for &c in controls {
            self.check_qubit(c);
            assert!(c != target, "control {c} equals target");
            cmask |= 1 << c;
        }
        let step = 1usize << target;
        let len = self.amps.len();
        let mut base = 0;
        while base < len {
            for j in base..base + step {
                if j & cmask == cmask {
                    let a = self.amps[j];
                    let b = self.amps[j + step];
                    self.amps[j] = m[0][0] * a + m[0][1] * b;
                    self.amps[j + step] = m[1][0] * a + m[1][1] * b;
                }
            }
            base += step << 1;
        }
    }

    /// Applies a general two-qubit gate. The 4x4 matrix acts on the basis
    /// `|b(q2) b(q1)>` with index `2*b(q2) + b(q1)`.
    ///
    /// # Panics
    /// Panics if indices coincide or are out of range.
    pub fn apply_two(&mut self, q1: usize, q2: usize, m: &Matrix4) {
        self.check_qubit(q1);
        self.check_qubit(q2);
        assert!(q1 != q2, "two-qubit gate requires distinct qubits");
        let b1 = 1usize << q1;
        let b2 = 1usize << q2;
        for i in 0..self.amps.len() {
            if i & b1 == 0 && i & b2 == 0 {
                let i00 = i;
                let i01 = i | b1;
                let i10 = i | b2;
                let i11 = i | b1 | b2;
                let v = [self.amps[i00], self.amps[i01], self.amps[i10], self.amps[i11]];
                for (r, idx) in [i00, i01, i10, i11].into_iter().enumerate() {
                    self.amps[idx] =
                        m[r][0] * v[0] + m[r][1] * v[1] + m[r][2] * v[2] + m[r][3] * v[3];
                }
            }
        }
    }

    /// Swaps two qubits (specialized, no matrix needed).
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        if a == b {
            return;
        }
        let ba = 1usize << a;
        let bb = 1usize << b;
        for i in 0..self.amps.len() {
            // Swap |..1..0..> with |..0..1..> once per pair.
            if i & ba != 0 && i & bb == 0 {
                let j = (i & !ba) | bb;
                self.amps.swap(i, j);
            }
        }
    }

    /// Multiplies each basis amplitude by the phase `e^{i f(index)}`.
    ///
    /// This implements any diagonal unitary directly; it is the workhorse of
    /// the QAOA cost layer and of phase oracles.
    pub fn apply_diagonal_phase(&mut self, f: impl Fn(usize) -> f64) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a *= Complex64::cis(f(i));
        }
    }

    /// Flips the sign of every basis state satisfying the predicate — a
    /// textbook Grover phase oracle.
    pub fn apply_phase_flip(&mut self, marked: impl Fn(usize) -> bool) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if marked(i) {
                *a = -*a;
            }
        }
    }

    /// Grover diffusion: reflection about the uniform superposition,
    /// `2|s><s| - I`.
    pub fn invert_about_mean(&mut self) {
        let mean =
            self.amps.iter().fold(C_ZERO, |acc, a| acc + *a).scale(1.0 / self.amps.len() as f64);
        for a in &mut self.amps {
            *a = mean.scale(2.0) - *a;
        }
    }

    /// Expectation value of a diagonal observable `sum_z f(z) |z><z|`.
    pub fn expectation_diagonal(&self, f: impl Fn(usize) -> f64) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let p = a.norm_sqr();
                if p > 0.0 {
                    p * f(i)
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Expectation of the Pauli-Z observable on qubit `q` (+1 for `|0>`).
    pub fn expectation_z(&self, q: usize) -> f64 {
        self.check_qubit(q);
        let bit = 1usize << q;
        self.expectation_diagonal(|i| if i & bit == 0 { 1.0 } else { -1.0 })
    }

    /// Expectation of `Z_a Z_b`.
    pub fn expectation_zz(&self, a: usize, b: usize) -> f64 {
        self.check_qubit(a);
        self.check_qubit(b);
        let (ba, bb) = (1usize << a, 1usize << b);
        self.expectation_diagonal(|i| {
            let za = if i & ba == 0 { 1.0 } else { -1.0 };
            let zb = if i & bb == 0 { 1.0 } else { -1.0 };
            za * zb
        })
    }

    /// Probability that measuring qubit `q` yields 1.
    pub fn probability_qubit_one(&self, q: usize) -> f64 {
        self.check_qubit(q);
        let bit = 1usize << q;
        self.amps.iter().enumerate().filter(|(i, _)| i & bit != 0).map(|(_, a)| a.norm_sqr()).sum()
    }

    /// Measures the full register, collapsing the state onto the sampled
    /// basis state. Returns the basis index.
    pub fn measure_all(&mut self, rng: &mut impl Rng) -> usize {
        let outcome = self.sample_one(rng);
        for a in &mut self.amps {
            *a = C_ZERO;
        }
        self.amps[outcome] = C_ONE;
        outcome
    }

    /// Samples one measurement outcome without collapsing the state.
    pub fn sample_one(&self, rng: &mut impl Rng) -> usize {
        let r: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Samples `shots` outcomes (with replacement, no collapse).
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> Vec<usize> {
        (0..shots).map(|_| self.sample_one(rng)).collect()
    }

    /// Histogram of `shots` sampled outcomes.
    pub fn sample_counts(&self, shots: usize, rng: &mut impl Rng) -> HashMap<usize, usize> {
        let mut counts = HashMap::new();
        for _ in 0..shots {
            *counts.entry(self.sample_one(rng)).or_insert(0) += 1;
        }
        counts
    }

    /// Measures a single qubit, collapsing the state. Returns the outcome bit.
    pub fn measure_qubit(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.probability_qubit_one(q);
        let outcome = rng.random::<f64>() < p1;
        self.project_qubit(q, outcome);
        outcome
    }

    /// Projects qubit `q` onto `|outcome>` and renormalizes.
    ///
    /// If the projection probability is zero the state is left as the zero
    /// vector of that subspace and then renormalization is skipped; callers
    /// that can hit this case should check probabilities first.
    pub fn project_qubit(&mut self, q: usize, outcome: bool) {
        self.check_qubit(q);
        let bit = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            let is_one = i & bit != 0;
            if is_one != outcome {
                *a = C_ZERO;
            }
        }
        self.normalize();
    }

    /// Inner product `<self|other>`.
    ///
    /// # Panics
    /// Panics if register widths differ.
    pub fn inner_product(&self, other: &Self) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "register width mismatch");
        self.amps.iter().zip(other.amps.iter()).fold(C_ZERO, |acc, (a, b)| acc + a.conj() * *b)
    }

    /// Fidelity `|<self|other>|^2` between two pure states.
    pub fn fidelity(&self, other: &Self) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Tensor product: `self` occupies the low-order qubits of the result,
    /// `other` the high-order qubits.
    pub fn tensor(&self, other: &Self) -> Self {
        let n = self.n_qubits + other.n_qubits;
        assert!(n <= MAX_DENSE_QUBITS);
        let mut amps = Vec::with_capacity(1 << n);
        for hi in &other.amps {
            for lo in &self.amps {
                amps.push(*hi * *lo);
            }
        }
        Self { n_qubits: n, amps }
    }

    /// Applies one branch of a single-qubit Kraus channel chosen according
    /// to the Born probabilities (Monte-Carlo trajectory / quantum-jump
    /// method), renormalizing the survivor.
    ///
    /// The candidate-branch amplitudes are built in a thread-local scratch
    /// buffer that is swapped (not copied) into the state on selection, so a
    /// trajectory applying noise after every gate performs zero allocations
    /// after the first call.
    pub fn apply_kraus_single(&mut self, q: usize, kraus: &[Matrix2], rng: &mut impl Rng) {
        self.check_qubit(q);
        debug_assert!(!kraus.is_empty());
        // Compute branch probabilities p_k = || K_k |psi> ||^2 lazily by
        // applying each operator to the scratch copy.
        let r: f64 = rng.random::<f64>();
        let mut acc = 0.0;
        KRAUS_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            // Bound retention: a past call on a much larger register must
            // not pin its allocation for the thread's lifetime. Same-size
            // reuse (the hot trajectory-simulation pattern) never shrinks.
            if scratch.capacity() > 2 * self.amps.len() {
                scratch.truncate(self.amps.len());
                scratch.shrink_to_fit();
            }
            scratch.resize(self.amps.len(), C_ZERO);
            for (k, m) in kraus.iter().enumerate() {
                scratch.copy_from_slice(&self.amps);
                apply_single_to(&mut scratch, q, m);
                let p: f64 = scratch.iter().map(|a| a.norm_sqr()).sum();
                acc += p;
                if r < acc || k == kraus.len() - 1 {
                    let norm = p.sqrt();
                    if norm > 0.0 {
                        let inv = 1.0 / norm;
                        for a in scratch.iter_mut() {
                            *a = a.scale(inv);
                        }
                    }
                    // The old amplitudes become the next call's scratch.
                    std::mem::swap(&mut self.amps, &mut *scratch);
                    return;
                }
            }
        });
    }

    /// Returns the `k` most probable basis states as `(index, probability)`
    /// pairs, sorted by decreasing probability.
    pub fn top_outcomes(&self, k: usize) -> Vec<(usize, f64)> {
        let mut probs: Vec<(usize, f64)> =
            self.amps.iter().enumerate().map(|(i, a)| (i, a.norm_sqr())).collect();
        probs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        probs.truncate(k);
        probs
    }
}

thread_local! {
    /// Reusable amplitude buffer for [`StateVector::apply_kraus_single`]:
    /// noise-heavy trajectory simulations call it once per gate, and cloning
    /// the full state every call dominated their runtime.
    static KRAUS_SCRATCH: std::cell::RefCell<Vec<Complex64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// [`StateVector::apply_single`] on a raw amplitude slice; shared by the
/// in-place gate path and the Kraus scratch-buffer path.
fn apply_single_to(amps: &mut [Complex64], q: usize, m: &Matrix2) {
    let step = 1usize << q;
    let len = amps.len();
    let mut base = 0;
    while base < len {
        for j in base..base + step {
            let a = amps[j];
            let b = amps[j + step];
            amps[j] = m[0][0] * a + m[0][1] * b;
            amps[j + step] = m[1][0] * a + m[1][1] * b;
        }
        base += step << 1;
    }
}

/// Formats a basis index as a bitstring `|q_{n-1} ... q_0>`.
pub fn bitstring(index: usize, n_qubits: usize) -> String {
    let mut s = String::with_capacity(n_qubits);
    for q in (0..n_qubits).rev() {
        s.push(if index & (1 << q) != 0 { '1' } else { '0' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    #[test]
    fn new_state_is_all_zeros() {
        let s = StateVector::new(3);
        assert_eq!(s.n_qubits(), 3);
        assert!((s.probability(0) - 1.0).abs() < EPS);
        assert!((s.norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn hadamard_creates_example_ii_1_superposition() {
        // Example II.1 of the paper: |psi> = (|0> + |1>)/sqrt(2).
        let mut s = StateVector::new(1);
        s.apply_single(0, &gates::hadamard());
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.probability(1) - 0.5).abs() < EPS);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = StateVector::new(2);
        s.apply_single(0, &gates::pauli_x());
        assert!((s.probability(0b01) - 1.0).abs() < EPS);
        s.apply_single(1, &gates::pauli_x());
        assert!((s.probability(0b11) - 1.0).abs() < EPS);
    }

    #[test]
    fn cnot_entangles_into_bell_state() {
        // Example IV.1: |Psi> = (|00> + |11>)/sqrt(2).
        let mut s = StateVector::new(2);
        s.apply_single(0, &gates::hadamard());
        s.apply_controlled(&[0], 1, &gates::pauli_x());
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
        assert!(s.probability(0b10) < EPS);
    }

    #[test]
    fn toffoli_via_two_controls() {
        let mut s = StateVector::basis_state(3, 0b011);
        s.apply_controlled(&[0, 1], 2, &gates::pauli_x());
        assert!((s.probability(0b111) - 1.0).abs() < EPS);
        // Not triggered when a control is 0.
        let mut s = StateVector::basis_state(3, 0b001);
        s.apply_controlled(&[0, 1], 2, &gates::pauli_x());
        assert!((s.probability(0b001) - 1.0).abs() < EPS);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::basis_state(3, 0b001);
        s.apply_swap(0, 2);
        assert!((s.probability(0b100) - 1.0).abs() < EPS);
        // Matrix-based SWAP agrees.
        let mut t = StateVector::basis_state(3, 0b001);
        t.apply_two(0, 2, &gates::swap());
        assert!((t.probability(0b100) - 1.0).abs() < EPS);
    }

    #[test]
    fn uniform_superposition_probabilities() {
        let s = StateVector::uniform(4);
        for i in 0..16 {
            assert!((s.probability(i) - 1.0 / 16.0).abs() < EPS);
        }
    }

    #[test]
    fn phase_flip_and_diffusion_amplify_marked_state() {
        // One Grover iteration on 2 qubits finds the marked state exactly.
        let mut s = StateVector::uniform(2);
        s.apply_phase_flip(|i| i == 0b10);
        s.invert_about_mean();
        assert!((s.probability(0b10) - 1.0).abs() < EPS);
    }

    #[test]
    fn measure_collapses() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = StateVector::uniform(3);
        let outcome = s.measure_all(&mut rng);
        assert!((s.probability(outcome) - 1.0).abs() < EPS);
    }

    #[test]
    fn sampling_matches_born_rule() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = StateVector::new(1);
        s.apply_single(0, &gates::hadamard());
        let shots = 20_000;
        let ones: usize = s.sample(shots, &mut rng).into_iter().sum();
        let frac = ones as f64 / shots as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn measure_qubit_collapses_partner_in_bell_state() {
        // The "spooky action" of Sec. II-A: measuring qubit A fixes qubit B.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let mut s = StateVector::new(2);
            s.apply_single(0, &gates::hadamard());
            s.apply_controlled(&[0], 1, &gates::pauli_x());
            let a = s.measure_qubit(0, &mut rng);
            let b = s.measure_qubit(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn expectation_z_signs() {
        let s = StateVector::basis_state(2, 0b01);
        assert!((s.expectation_z(0) + 1.0).abs() < EPS);
        assert!((s.expectation_z(1) - 1.0).abs() < EPS);
        assert!((s.expectation_zz(0, 1) + 1.0).abs() < EPS);
    }

    #[test]
    fn tensor_product_composes_widths() {
        let mut a = StateVector::new(1);
        a.apply_single(0, &gates::pauli_x()); // |1>
        let b = StateVector::new(2); // |00>
        let t = a.tensor(&b); // low bit = a
        assert_eq!(t.n_qubits(), 3);
        assert!((t.probability(0b001) - 1.0).abs() < EPS);
    }

    #[test]
    fn inner_product_orthogonality() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 3);
        assert!(a.inner_product(&b).is_negligible(EPS));
        assert!((a.fidelity(&a) - 1.0).abs() < EPS);
    }

    #[test]
    fn from_amplitudes_validates() {
        assert!(matches!(
            StateVector::from_amplitudes(vec![C_ONE; 3]),
            Err(SimError::NotPowerOfTwo { len: 3 })
        ));
        assert!(matches!(
            StateVector::from_amplitudes(vec![C_ONE, C_ONE]),
            Err(SimError::NotNormalized)
        ));
        let ok = StateVector::from_amplitudes(vec![C_ONE, C_ZERO]);
        assert!(ok.is_ok());
    }

    #[test]
    fn bitstring_formats_msb_first() {
        assert_eq!(bitstring(0b010, 3), "010");
        assert_eq!(bitstring(5, 4), "0101");
    }

    #[test]
    fn top_outcomes_sorted() {
        let mut s = StateVector::uniform(2);
        s.apply_phase_flip(|i| i == 1);
        s.invert_about_mean();
        let top = s.top_outcomes(2);
        assert_eq!(top[0].0, 1);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn kraus_identity_channel_is_noop() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = StateVector::uniform(2);
        let before = s.clone();
        s.apply_kraus_single(0, &[gates::identity()], &mut rng);
        assert!((s.fidelity(&before) - 1.0).abs() < EPS);
    }
}
