//! Minimal complex-number arithmetic for quantum amplitudes.
//!
//! We deliberately implement this in-repo instead of pulling `num-complex`:
//! the simulator needs only a handful of operations on `f64` pairs, and the
//! offline dependency set for this reproduction is restricted (see DESIGN.md).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i*im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const C_ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const C_ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
/// The imaginary unit `i`.
pub const C_I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Returns `e^{i theta}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|^2`; this is the measurement probability of an
    /// amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaNs when `self` is zero, mirroring
    /// float division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self { re: self.re / d, im: -self.im / d }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self { re: self.re * k, im: self.im * k }
    }

    /// True when both parts are within `eps` of the other value's.
    #[inline]
    pub fn approx_eq(self, other: Self, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// True when the modulus is below `eps`.
    #[inline]
    pub fn is_negligible(self, eps: f64) -> bool {
        self.norm_sqr() <= eps * eps
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^{-1}
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self { re: self.re / rhs, im: self.im / rhs }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(C_ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.25);
        assert!((a + b - b).approx_eq(a, EPS));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 4.0);
        let p = a * b;
        assert!((p.re - (-2.0 - 3.0 * 4.0)).abs() < EPS);
        assert!((p.im - (2.0 * 4.0 + -3.0)).abs() < EPS);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C_I * C_I).approx_eq(-C_ONE, EPS));
    }

    #[test]
    fn conj_negates_imaginary() {
        let a = Complex64::new(1.0, 2.0);
        assert_eq!(a.conj(), Complex64::new(1.0, -2.0));
        assert!((a * a.conj()).approx_eq(Complex64::real(a.norm_sqr()), EPS));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.norm() - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < EPS);
    }

    #[test]
    fn cis_has_unit_modulus() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * 0.4321);
            assert!((z.norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(3.0, -1.0);
        let b = Complex64::new(0.5, 2.0);
        assert!(((a * b) / b).approx_eq(a, 1e-10));
    }

    #[test]
    fn inv_times_self_is_one() {
        let a = Complex64::new(0.3, -0.7);
        assert!((a * a.inv()).approx_eq(C_ONE, EPS));
    }

    #[test]
    fn sum_folds_components() {
        let s: Complex64 = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -3.0)].into_iter().sum();
        assert!(s.approx_eq(Complex64::new(3.0, -2.0), EPS));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, -0.5)), "1.000000-0.500000i");
    }
}
