//! Noise channels and noisy circuit execution.
//!
//! Sec. III-C.3 of the paper names "noisy operations" as one of the two
//! practical constraints of near-term quantum computers. This module models
//! the standard single-qubit channels as Kraus operator sets and provides a
//! trajectory-based noisy executor for [`Circuit`]s: after every gate, each
//! touched qubit passes through the channel.

use crate::circuit::Circuit;
use crate::complex::{Complex64, C_ZERO};
use crate::gates::{self, Matrix2};
use crate::state::StateVector;
use rand::Rng;

/// A single-qubit noise channel, parameterized by an error probability or
/// damping rate in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseChannel {
    /// With probability `p`, apply X.
    BitFlip(f64),
    /// With probability `p`, apply Z.
    PhaseFlip(f64),
    /// With probability `p`, apply a uniformly random Pauli (X, Y or Z).
    Depolarizing(f64),
    /// Amplitude damping (energy relaxation) with rate `gamma`.
    AmplitudeDamping(f64),
    /// No noise.
    Ideal,
}

impl NoiseChannel {
    /// The Kraus operator decomposition of the channel.
    pub fn kraus(&self) -> Vec<Matrix2> {
        match *self {
            NoiseChannel::Ideal => vec![gates::identity()],
            NoiseChannel::BitFlip(p) => vec![
                scale2(&gates::identity(), (1.0 - p).sqrt()),
                scale2(&gates::pauli_x(), p.sqrt()),
            ],
            NoiseChannel::PhaseFlip(p) => vec![
                scale2(&gates::identity(), (1.0 - p).sqrt()),
                scale2(&gates::pauli_z(), p.sqrt()),
            ],
            NoiseChannel::Depolarizing(p) => vec![
                scale2(&gates::identity(), (1.0 - p).sqrt()),
                scale2(&gates::pauli_x(), (p / 3.0).sqrt()),
                scale2(&gates::pauli_y(), (p / 3.0).sqrt()),
                scale2(&gates::pauli_z(), (p / 3.0).sqrt()),
            ],
            NoiseChannel::AmplitudeDamping(gamma) => {
                let mut k0 = [[C_ZERO; 2]; 2];
                k0[0][0] = Complex64::real(1.0);
                k0[1][1] = Complex64::real((1.0 - gamma).sqrt());
                let mut k1 = [[C_ZERO; 2]; 2];
                k1[0][1] = Complex64::real(gamma.sqrt());
                vec![k0, k1]
            }
        }
    }

    /// The channel's error parameter.
    pub fn parameter(&self) -> f64 {
        match *self {
            NoiseChannel::BitFlip(p)
            | NoiseChannel::PhaseFlip(p)
            | NoiseChannel::Depolarizing(p)
            | NoiseChannel::AmplitudeDamping(p) => p,
            NoiseChannel::Ideal => 0.0,
        }
    }
}

/// A device-level noise model: a channel applied to every qubit a gate
/// touches, immediately after the gate.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Channel applied after single-qubit gates.
    pub single_qubit: NoiseChannel,
    /// Channel applied (per touched qubit) after multi-qubit gates; two-qubit
    /// gates are noisier on real hardware, so this is typically stronger.
    pub multi_qubit: NoiseChannel,
}

impl NoiseModel {
    /// An ideal (noise-free) model.
    pub fn ideal() -> Self {
        Self { single_qubit: NoiseChannel::Ideal, multi_qubit: NoiseChannel::Ideal }
    }

    /// A uniform depolarizing model with single-qubit error `p1` and
    /// multi-qubit error `p2` (typically `p2 ~ 10 * p1` on hardware).
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        Self {
            single_qubit: NoiseChannel::Depolarizing(p1),
            multi_qubit: NoiseChannel::Depolarizing(p2),
        }
    }
}

/// Runs a circuit under a noise model using Monte-Carlo trajectories,
/// starting from `|0...0>`. Returns the final (normalized) trajectory state.
pub fn run_noisy(circuit: &Circuit, model: &NoiseModel, rng: &mut impl Rng) -> StateVector {
    let mut state = StateVector::new(circuit.n_qubits());
    apply_noisy(circuit, model, &mut state, rng);
    state
}

/// Applies a circuit to an existing state under a noise model (one
/// trajectory).
pub fn apply_noisy(
    circuit: &Circuit,
    model: &NoiseModel,
    state: &mut StateVector,
    rng: &mut impl Rng,
) {
    for gate in circuit.gates() {
        gate.apply(state);
        let channel = if gate.is_multi_qubit() { model.multi_qubit } else { model.single_qubit };
        if !matches!(channel, NoiseChannel::Ideal) {
            let kraus = channel.kraus();
            for q in gate.qubits() {
                state.apply_kraus_single(q, &kraus, rng);
            }
        }
    }
}

/// Average fidelity of the noisy execution of `circuit` against its ideal
/// output, estimated over `trajectories` Monte-Carlo runs.
pub fn average_fidelity(
    circuit: &Circuit,
    model: &NoiseModel,
    trajectories: usize,
    rng: &mut impl Rng,
) -> f64 {
    let ideal = circuit.run();
    let mut total = 0.0;
    for _ in 0..trajectories {
        let noisy = run_noisy(circuit, model, rng);
        total += ideal.fidelity(&noisy);
    }
    total / trajectories as f64
}

fn scale2(m: &Matrix2, k: f64) -> Matrix2 {
    let mut out = *m;
    for row in &mut out {
        for v in row {
            *v = v.scale(k);
        }
    }
    out
}

/// Verifies the Kraus completeness relation `sum_k K_k^dagger K_k = I`.
pub fn is_trace_preserving(kraus: &[Matrix2], eps: f64) -> bool {
    let mut acc = [[C_ZERO; 2]; 2];
    for k in kraus {
        let kd = gates::mat2_dagger(k);
        let p = gates::mat2_mul(&kd, k);
        for r in 0..2 {
            for c in 0..2 {
                acc[r][c] += p[r][c];
            }
        }
    }
    let id = gates::identity();
    (0..2).all(|r| (0..2).all(|c| acc[r][c].approx_eq(id[r][c], eps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_channels_are_trace_preserving() {
        for ch in [
            NoiseChannel::Ideal,
            NoiseChannel::BitFlip(0.1),
            NoiseChannel::PhaseFlip(0.25),
            NoiseChannel::Depolarizing(0.05),
            NoiseChannel::AmplitudeDamping(0.3),
        ] {
            assert!(is_trace_preserving(&ch.kraus(), 1e-12), "{ch:?}");
        }
    }

    #[test]
    fn ideal_model_reproduces_exact_state() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cnot(1, 2);
        let s = run_noisy(&c, &NoiseModel::ideal(), &mut rng);
        assert!((s.fidelity(&c.run()) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bit_flip_noise_flips_state_sometimes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut c = Circuit::new(1);
        c.x(0);
        let model = NoiseModel {
            single_qubit: NoiseChannel::BitFlip(0.5),
            multi_qubit: NoiseChannel::Ideal,
        };
        let mut flipped = 0;
        let runs = 400;
        for _ in 0..runs {
            let s = run_noisy(&c, &model, &mut rng);
            if s.probability(0) > 0.5 {
                flipped += 1;
            }
        }
        let frac = flipped as f64 / runs as f64;
        assert!((frac - 0.5).abs() < 0.1, "flip fraction {frac}");
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Circuit::new(1);
        c.x(0);
        let model = NoiseModel {
            single_qubit: NoiseChannel::AmplitudeDamping(0.4),
            multi_qubit: NoiseChannel::Ideal,
        };
        // After damping, P(|1>) over trajectories should be ~0.6.
        let runs = 2000;
        let mut p1 = 0.0;
        for _ in 0..runs {
            let s = run_noisy(&c, &model, &mut rng);
            p1 += s.probability(1);
        }
        p1 /= runs as f64;
        assert!((p1 - 0.6).abs() < 0.05, "p1={p1}");
    }

    #[test]
    fn fidelity_decreases_with_noise() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut c = Circuit::new(4);
        for layer in 0..3 {
            for q in 0..4 {
                c.ry(q, 0.3 * (layer + 1) as f64);
            }
            c.cnot(0, 1).cnot(1, 2).cnot(2, 3);
        }
        let weak = average_fidelity(&c, &NoiseModel::depolarizing(0.001, 0.01), 60, &mut rng);
        let strong = average_fidelity(&c, &NoiseModel::depolarizing(0.02, 0.2), 60, &mut rng);
        assert!(weak > strong, "weak={weak} strong={strong}");
        assert!(weak > 0.8);
    }
}
