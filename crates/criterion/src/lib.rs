//! # criterion (workspace shim)
//!
//! A small Criterion-compatible benchmark harness so `cargo bench` works
//! without crates.io access. It implements the API surface the workspace's
//! benches use — `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter` — with a simple but honest measurement loop: per sample,
//! run the closure in a timed batch sized to the warm-up estimate, then
//! report the median and min/max across samples in ns/iter.

#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Positional CLI arguments (everything not starting with `-`), parsed
/// once. Like real Criterion, they act as substring filters over benchmark
/// ids: `cargo bench --bench bench_runtime -- runtime/compile_once` runs
/// only the matching benchmarks. Flags (including the `--bench` cargo
/// appends) are ignored.
fn filters() -> &'static [String] {
    static FILTERS: OnceLock<Vec<String>> = OnceLock::new();
    FILTERS.get_or_init(|| std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect())
}

/// Whether `name` (a benchmark or group id) matches the CLI filter. True
/// when no filter was given. Bench functions with expensive setup or
/// direct-timing sections outside [`Bencher::iter`] should gate on this so
/// a filtered run (CI smoke mode) skips their work entirely.
pub fn filter_allows(name: &str) -> bool {
    let fs = filters();
    fs.is_empty() || fs.iter().any(|f| name.contains(f.as_str()) || f.contains(name))
}

/// Identifier for a parameterized benchmark, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs and times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    /// Per-sample mean ns/iter, filled by [`Bencher::iter`].
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-sample ns/iter estimates.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate the per-call cost for ~50ms.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed() < warmup {
            std::hint::black_box(f());
            calls += 1;
        }
        let per_call = start.elapsed().as_secs_f64() / calls as f64;
        // Size batches to ~20ms, at least one call.
        let batch = ((0.02 / per_call.max(1e-9)) as u64).max(1);
        self.results_ns.clear();
        for _ in 0..self.samples.max(3) {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.results_ns.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if !filter_allows(full_id) {
        return;
    }
    let mut b = Bencher { samples, results_ns: Vec::new() };
    f(&mut b);
    if b.results_ns.is_empty() {
        println!("{full_id:<48} (no measurement)");
        return;
    }
    b.results_ns.sort_by(|a, c| a.total_cmp(c));
    let median = b.results_ns[b.results_ns.len() / 2];
    let min = b.results_ns[0];
    let max = b.results_ns[b.results_ns.len() - 1];
    println!("{full_id:<48} time: [{} {} {}]", fmt_ns(min), fmt_ns(median), fmt_ns(max));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (separator line, for parity with real Criterion).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), samples: self.samples }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.samples, &mut f);
        self
    }
}

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
