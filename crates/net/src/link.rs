//! Physical link models for entanglement distribution: optical fiber and
//! satellite downlinks — the two demonstrated regimes the paper cites
//! (248 km transnational fiber \[5\], 1203 km via satellite \[6\]).

use crate::werner::WernerPair;
use rand::Rng;

/// A point-to-point entanglement-generation link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkModel {
    /// Telecom fiber: attenuation `alpha` dB/km (0.2 dB/km standard).
    Fiber {
        /// Length in km.
        length_km: f64,
        /// Attenuation in dB/km.
        alpha_db_per_km: f64,
    },
    /// Satellite downlink: inverse-square diffraction loss beyond a
    /// reference distance, plus a fixed atmospheric penalty.
    Satellite {
        /// Ground distance in km.
        length_km: f64,
    },
}

/// Default attempt rate of the entanglement source (attempts per second).
pub const DEFAULT_ATTEMPT_RATE: f64 = 1.0e6;

/// Base fidelity of a freshly generated pair (source imperfection).
pub const FRESH_PAIR_FIDELITY: f64 = 0.98;

impl LinkModel {
    /// Standard fiber at 0.2 dB/km.
    pub fn fiber(length_km: f64) -> Self {
        LinkModel::Fiber { length_km, alpha_db_per_km: 0.2 }
    }

    /// Satellite downlink over the given ground distance.
    pub fn satellite(length_km: f64) -> Self {
        LinkModel::Satellite { length_km }
    }

    /// Link length in km.
    pub fn length_km(&self) -> f64 {
        match *self {
            LinkModel::Fiber { length_km, .. } | LinkModel::Satellite { length_km } => length_km,
        }
    }

    /// Success probability of one entanglement-generation attempt.
    pub fn attempt_success_probability(&self) -> f64 {
        match *self {
            LinkModel::Fiber { length_km, alpha_db_per_km } => {
                // Photon survival through the fiber.
                10f64.powf(-alpha_db_per_km * length_km / 10.0)
            }
            LinkModel::Satellite { length_km } => {
                // Diffraction-limited free-space loss: ~1/L^2 beyond a
                // 20 km near-field range, with 10 dB of fixed
                // atmospheric/pointing loss.
                let near_field_km = 20.0;
                let atmospheric = 0.1;
                if length_km <= near_field_km {
                    atmospheric
                } else {
                    atmospheric * (near_field_km / length_km).powi(2)
                }
            }
        }
    }

    /// Expected entangled-pair rate (pairs per second) at the default
    /// attempt rate.
    pub fn pair_rate(&self) -> f64 {
        DEFAULT_ATTEMPT_RATE * self.attempt_success_probability()
    }

    /// Expected time to generate one pair, in seconds.
    pub fn expected_generation_time(&self) -> f64 {
        1.0 / self.pair_rate().max(f64::MIN_POSITIVE)
    }

    /// Fidelity of a freshly delivered pair: source fidelity degraded by a
    /// small length-dependent dephasing.
    pub fn fresh_fidelity(&self) -> f64 {
        let depolarization = 1.0 - (-self.length_km() / 10_000.0).exp();
        (FRESH_PAIR_FIDELITY * (1.0 - depolarization) + 0.25 * depolarization).clamp(0.25, 1.0)
    }

    /// Runs attempts until a pair is delivered (or `max_attempts` is
    /// exhausted). Returns `(attempts_used, pair)` on success.
    pub fn try_generate(&self, max_attempts: u64, rng: &mut impl Rng) -> Option<(u64, WernerPair)> {
        let p = self.attempt_success_probability();
        for attempt in 1..=max_attempts {
            if rng.random::<f64>() < p {
                return Some((attempt, WernerPair::new(self.fresh_fidelity())));
            }
        }
        None
    }
}

/// The crossover distance (km) beyond which the satellite link outrates
/// fiber, found by bisection on the two loss models.
pub fn fiber_satellite_crossover_km() -> f64 {
    let rate_gap = |l: f64| {
        LinkModel::satellite(l).attempt_success_probability()
            - LinkModel::fiber(l).attempt_success_probability()
    };
    let (mut lo, mut hi) = (20.0, 2000.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if rate_gap(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fiber_loss_matches_formula() {
        let l = LinkModel::fiber(50.0);
        // 10 dB of loss -> 10% survival.
        assert!((l.attempt_success_probability() - 0.1).abs() < 1e-12);
        let l248 = LinkModel::fiber(248.0);
        assert!((l248.attempt_success_probability() - 10f64.powf(-4.96)).abs() < 1e-14);
    }

    #[test]
    fn rates_decrease_with_distance() {
        for mk in [LinkModel::fiber as fn(f64) -> LinkModel, LinkModel::satellite] {
            let near = mk(100.0).pair_rate();
            let far = mk(800.0).pair_rate();
            assert!(near > far, "{near} vs {far}");
        }
    }

    #[test]
    fn paper_operating_points_are_feasible() {
        // 248 km fiber [5] and 1203 km satellite [6] must both deliver
        // pairs at a nonzero practical rate (>= 1 pair/s at 1 MHz attempts).
        assert!(LinkModel::fiber(248.0).pair_rate() >= 1.0);
        assert!(LinkModel::satellite(1203.0).pair_rate() >= 1.0);
        // ... but 1203 km of *fiber* is hopeless (< 1 pair per year).
        assert!(LinkModel::fiber(1203.0).pair_rate() < 1e-15);
    }

    #[test]
    fn satellite_beats_fiber_beyond_crossover() {
        let x = fiber_satellite_crossover_km();
        assert!(x > 50.0 && x < 500.0, "crossover {x} km");
        let before = x - 30.0;
        let after = x + 30.0;
        assert!(LinkModel::fiber(before).pair_rate() > LinkModel::satellite(before).pair_rate());
        assert!(LinkModel::satellite(after).pair_rate() > LinkModel::fiber(after).pair_rate());
    }

    #[test]
    fn generation_consumes_geometric_attempts() {
        let mut rng = StdRng::seed_from_u64(5);
        let link = LinkModel::fiber(50.0); // p = 0.1
        let mut total = 0u64;
        let runs = 400;
        for _ in 0..runs {
            let (attempts, pair) = link.try_generate(10_000, &mut rng).expect("succeeds");
            total += attempts;
            assert!(pair.fidelity > 0.9);
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 10.0).abs() < 2.0, "mean attempts {mean}");
    }

    #[test]
    fn fresh_fidelity_bounded_and_monotone() {
        let near = LinkModel::fiber(10.0).fresh_fidelity();
        let far = LinkModel::fiber(500.0).fresh_fidelity();
        assert!(near <= FRESH_PAIR_FIDELITY && near > far);
        assert!(far >= 0.25);
    }

    #[test]
    fn generation_can_time_out() {
        let mut rng = StdRng::seed_from_u64(6);
        let hopeless = LinkModel::fiber(1500.0);
        assert!(hopeless.try_generate(100, &mut rng).is_none());
    }
}
