//! Repeater chains — the paper's Fig. 1(c): "the repeater establishes
//! quantum entanglement with each end node, enabling data transmission
//! through quantum teleportation."
//!
//! A chain divides the end-to-end distance into segments; each segment
//! generates an elementary pair, adjacent pairs are fused by entanglement
//! swapping at the repeater stations, and optional purification pumps the
//! segment fidelity before swapping.

use crate::link::{LinkModel, DEFAULT_ATTEMPT_RATE};
use crate::werner::{purification_pump, swap_chain, WernerPair};

/// Configuration of a repeater chain.
#[derive(Debug, Clone, Copy)]
pub struct RepeaterChain {
    /// Total end-to-end distance in km.
    pub total_km: f64,
    /// Number of segments (`1` = direct transmission, `k` uses `k - 1`
    /// repeater stations).
    pub segments: usize,
    /// Success probability of a Bell-state measurement at a station
    /// (0.5 for linear optics, ~1.0 for deterministic matter-based BSMs).
    pub bsm_success: f64,
    /// Purification rounds applied to each segment pair before swapping.
    pub purification_rounds: usize,
}

/// Predicted steady-state performance of a chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainPerformance {
    /// End-to-end entangled pairs per second.
    pub rate_hz: f64,
    /// End-to-end pair fidelity.
    pub fidelity: f64,
    /// Secret-key-capable: fidelity above the ~0.81 QBER-11% threshold.
    pub key_capable: bool,
}

impl RepeaterChain {
    /// A direct (repeater-less) fiber link.
    pub fn direct(total_km: f64) -> Self {
        Self { total_km, segments: 1, bsm_success: 1.0, purification_rounds: 0 }
    }

    /// A chain with `segments` equal fiber segments and matter-memory
    /// stations (deterministic swapping).
    pub fn with_segments(total_km: f64, segments: usize) -> Self {
        assert!(segments >= 1);
        Self { total_km, segments, bsm_success: 1.0, purification_rounds: 0 }
    }

    /// The per-segment fiber link.
    pub fn segment_link(&self) -> LinkModel {
        LinkModel::fiber(self.total_km / self.segments as f64)
    }

    /// Analytic performance model.
    ///
    /// Rate: segments generate in parallel; the chain completes when the
    /// slowest segment finishes, approximated by the coupon-collector
    /// factor `H(segments)`; each of the `segments - 1` swaps succeeds
    /// with `bsm_success`; purification divides the rate by its expected
    /// pair cost.
    ///
    /// Fidelity: per-segment fresh fidelity, pumped by purification, then
    /// composed through `segments - 1` Werner swaps.
    pub fn performance(&self) -> ChainPerformance {
        let link = self.segment_link();
        let p_seg = link.attempt_success_probability();
        let harmonic: f64 = (1..=self.segments).map(|k| 1.0 / k as f64).sum();
        let segment_rate = DEFAULT_ATTEMPT_RATE * p_seg;
        let swap_factor = self.bsm_success.powi(self.segments as i32 - 1);

        let raw = WernerPair::new(link.fresh_fidelity());
        let (pumped, pump_cost) = purification_pump(raw, self.purification_rounds);
        let pairs: Vec<WernerPair> = vec![pumped; self.segments];
        let end = swap_chain(&pairs).expect("at least one segment");

        let rate = segment_rate / harmonic * swap_factor / pump_cost;
        ChainPerformance {
            rate_hz: rate,
            fidelity: end.fidelity,
            // F > 0.81 keeps the teleportation/QKD error under ~11%.
            key_capable: end.fidelity > 0.81,
        }
    }
}

/// Sweeps segment counts and returns the configuration maximizing the
/// rate among chains that remain key-capable (or the best-fidelity chain
/// if none qualifies).
pub fn best_chain(total_km: f64, max_segments: usize) -> (RepeaterChain, ChainPerformance) {
    let mut best: Option<(RepeaterChain, ChainPerformance)> = None;
    for segments in 1..=max_segments.max(1) {
        let chain = RepeaterChain::with_segments(total_km, segments);
        let perf = chain.performance();
        let better = match &best {
            None => true,
            Some((_, b)) => match (perf.key_capable, b.key_capable) {
                (true, false) => true,
                (false, true) => false,
                (true, true) => perf.rate_hz > b.rate_hz,
                (false, false) => perf.fidelity > b.fidelity,
            },
        };
        if better {
            best = Some((chain, perf));
        }
    }
    best.expect("max_segments >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_link_matches_link_model() {
        let chain = RepeaterChain::direct(100.0);
        let perf = chain.performance();
        let link = LinkModel::fiber(100.0);
        assert!((perf.rate_hz - link.pair_rate()).abs() / link.pair_rate() < 1e-9);
        assert!((perf.fidelity - link.fresh_fidelity()).abs() < 1e-12);
    }

    #[test]
    fn repeaters_beat_direct_transmission_at_long_distance() {
        // At 600 km, direct fiber is ~10^-12 pair/s; 8 segments are
        // dramatically faster — the raison d'être of Fig. 1(c).
        let direct = RepeaterChain::direct(600.0).performance();
        let chain = RepeaterChain::with_segments(600.0, 8).performance();
        assert!(
            chain.rate_hz > direct.rate_hz * 1e6,
            "chain {} vs direct {}",
            chain.rate_hz,
            direct.rate_hz
        );
    }

    #[test]
    fn more_segments_cost_fidelity() {
        let few = RepeaterChain::with_segments(400.0, 2).performance();
        let many = RepeaterChain::with_segments(400.0, 16).performance();
        assert!(many.fidelity < few.fidelity);
    }

    #[test]
    fn purification_recovers_fidelity_at_rate_cost() {
        let plain =
            RepeaterChain { purification_rounds: 0, ..RepeaterChain::with_segments(500.0, 8) };
        let pumped = RepeaterChain { purification_rounds: 2, ..plain };
        let p0 = plain.performance();
        let p2 = pumped.performance();
        assert!(p2.fidelity > p0.fidelity);
        assert!(p2.rate_hz < p0.rate_hz);
    }

    #[test]
    fn probabilistic_bsm_reduces_rate() {
        let matter = RepeaterChain::with_segments(300.0, 4).performance();
        let optics = RepeaterChain { bsm_success: 0.5, ..RepeaterChain::with_segments(300.0, 4) }
            .performance();
        assert!((optics.rate_hz - matter.rate_hz / 8.0).abs() / matter.rate_hz < 1e-9);
        assert!((optics.fidelity - matter.fidelity).abs() < 1e-12);
    }

    #[test]
    fn best_chain_prefers_key_capable_configs() {
        let (chain, perf) = best_chain(500.0, 16);
        assert!(perf.key_capable, "chosen chain not key-capable: {perf:?}");
        assert!(chain.segments >= 2, "500 km should need repeaters");
        assert!(perf.rate_hz > RepeaterChain::direct(500.0).performance().rate_hz);
    }

    #[test]
    fn transcontinental_needs_many_segments() {
        // The paper's vision: "cloud data centers across continents linked
        // by quantum internet". 2000 km is impossible directly...
        assert!(RepeaterChain::direct(2000.0).performance().rate_hz < 1e-30);
        // ...but a 32-segment chain delivers pairs at a usable rate.
        let chain = RepeaterChain::with_segments(2000.0, 32).performance();
        assert!(chain.rate_hz > 1.0, "rate {}", chain.rate_hz);
    }
}
