//! Quantum teleportation — "enabling data transmission through quantum
//! teleportation" (Fig. 1c caption).
//!
//! Implements the exact three-qubit protocol on the state-vector
//! simulator (qubit 0 = payload, qubits 1/2 = the shared pair) and the
//! noisy variant over Werner pairs (the pair is one of the four Bell
//! states with Werner probabilities, reproducing the analytic
//! `(2F + 1)/3` average fidelity).

use crate::werner::WernerPair;
use qdm_sim::complex::{Complex64, C_ZERO};
use qdm_sim::gates;
use qdm_sim::state::StateVector;
use qdm_sim::states::{bell_state, BellState};
use rand::Rng;

/// Outcome of one teleportation: Bob's reconstructed qubit and Alice's two
/// classical correction bits.
#[derive(Debug, Clone)]
pub struct TeleportOutcome {
    /// The state delivered to Bob (single qubit).
    pub delivered: StateVector,
    /// Alice's Z-correction bit (her payload-qubit measurement).
    pub m_payload: bool,
    /// Alice's X-correction bit (her half-pair measurement).
    pub m_pair: bool,
}

/// Teleports a single-qubit payload over a shared two-qubit resource state
/// (`|pair>` on qubits 1 and 2; Alice holds 0 and 1, Bob holds 2).
///
/// # Panics
/// Panics unless `payload` is 1 qubit and `pair` is 2 qubits.
pub fn teleport_over(
    payload: &StateVector,
    pair: &StateVector,
    rng: &mut impl Rng,
) -> TeleportOutcome {
    assert_eq!(payload.n_qubits(), 1, "payload must be a single qubit");
    assert_eq!(pair.n_qubits(), 2, "resource must be a two-qubit pair");
    // Full register: payload ⊗ pair (payload = qubit 0).
    let mut state = payload.tensor(pair);
    // Alice: CNOT(payload -> her pair half), H on payload, measure both.
    state.apply_controlled(&[0], 1, &gates::pauli_x());
    state.apply_single(0, &gates::hadamard());
    let m_payload = state.measure_qubit(0, rng);
    let m_pair = state.measure_qubit(1, rng);
    // Bob's corrections on qubit 2.
    if m_pair {
        state.apply_single(2, &gates::pauli_x());
    }
    if m_payload {
        state.apply_single(2, &gates::pauli_z());
    }
    // Extract Bob's qubit: qubits 0 and 1 are collapsed basis states, so
    // the register factorizes; read the two surviving amplitudes.
    let low = (usize::from(m_pair) << 1) | usize::from(m_payload);
    let a0 = state.amplitude(low);
    let a1 = state.amplitude(low | 0b100);
    let mut amps = vec![C_ZERO; 2];
    amps[0] = a0;
    amps[1] = a1;
    let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
    let delivered =
        StateVector::from_amplitudes(amps.into_iter().map(|a| a.scale(1.0 / norm)).collect())
            .expect("post-measurement state is a valid qubit");
    TeleportOutcome { delivered, m_payload, m_pair }
}

/// Ideal teleportation over a perfect `|Phi+>` pair.
pub fn teleport(payload: &StateVector, rng: &mut impl Rng) -> TeleportOutcome {
    teleport_over(payload, &bell_state(BellState::PhiPlus), rng)
}

/// One trajectory of teleportation over a Werner pair of fidelity `F`:
/// the resource collapses to `|Phi+>` with probability `F` and to each
/// other Bell state with probability `(1-F)/3`. Returns the fidelity of
/// the delivered state against the payload.
pub fn teleport_over_werner(payload: &StateVector, pair: WernerPair, rng: &mut impl Rng) -> f64 {
    let f = pair.fidelity;
    let r: f64 = rng.random::<f64>();
    let which = if r < f {
        BellState::PhiPlus
    } else if r < f + (1.0 - f) / 3.0 {
        BellState::PhiMinus
    } else if r < f + 2.0 * (1.0 - f) / 3.0 {
        BellState::PsiPlus
    } else {
        BellState::PsiMinus
    };
    let outcome = teleport_over(payload, &bell_state(which), rng);
    outcome.delivered.fidelity(payload)
}

/// Monte-Carlo estimate of the average teleportation fidelity over a
/// Werner pair, sampling Haar-ish random payloads. Converges to
/// `(2F + 1)/3`.
pub fn average_werner_fidelity(pair: WernerPair, samples: usize, rng: &mut impl Rng) -> f64 {
    let mut total = 0.0;
    for _ in 0..samples {
        let payload = random_qubit(rng);
        total += teleport_over_werner(&payload, pair, rng);
    }
    total / samples as f64
}

/// A uniformly random pure qubit state.
pub fn random_qubit(rng: &mut impl Rng) -> StateVector {
    let theta = (1.0 - 2.0 * rng.random::<f64>()).acos();
    let phi = rng.random::<f64>() * std::f64::consts::TAU;
    let amps =
        vec![Complex64::real((theta / 2.0).cos()), Complex64::from_polar((theta / 2.0).sin(), phi)];
    StateVector::from_amplitudes(amps).expect("Bloch-sphere point is normalized")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_teleportation_is_perfect() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..25 {
            let payload = random_qubit(&mut rng);
            let outcome = teleport(&payload, &mut rng);
            assert!(
                (outcome.delivered.fidelity(&payload) - 1.0).abs() < 1e-10,
                "teleportation corrupted the payload"
            );
        }
    }

    #[test]
    fn all_four_correction_branches_occur() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let payload = random_qubit(&mut rng);
            let o = teleport(&payload, &mut rng);
            seen.insert((o.m_payload, o.m_pair));
        }
        assert_eq!(seen.len(), 4, "all (m1, m2) pairs should appear");
    }

    #[test]
    fn teleporting_basis_states() {
        let mut rng = StdRng::seed_from_u64(3);
        for basis in 0..2 {
            let payload = StateVector::basis_state(1, basis);
            let o = teleport(&payload, &mut rng);
            assert!((o.delivered.probability(basis) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn werner_average_matches_analytic_formula() {
        let mut rng = StdRng::seed_from_u64(4);
        for f in [1.0, 0.9, 0.7, 0.5] {
            let pair = WernerPair::new(f);
            let measured = average_werner_fidelity(pair, 3000, &mut rng);
            let analytic = pair.teleportation_fidelity();
            assert!(
                (measured - analytic).abs() < 0.02,
                "F={f}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn corrupted_pair_degrades_delivery() {
        let mut rng = StdRng::seed_from_u64(5);
        let payload = random_qubit(&mut rng);
        // Teleporting over the WRONG Bell state without knowing it gives a
        // Pauli-corrupted output.
        let o = teleport_over(&payload, &bell_state(BellState::PsiPlus), &mut rng);
        // Still a valid qubit...
        assert!((o.delivered.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn random_qubits_are_normalized_and_diverse() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_qubit(&mut rng);
        let b = random_qubit(&mut rng);
        assert!((a.norm_sqr() - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&b) < 0.999, "two random qubits should differ");
    }
}
