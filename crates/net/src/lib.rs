//! # qdm-net — the quantum internet substrate (Sec. IV)
//!
//! Everything the paper's "data management via quantum internet" vision
//! needs, simulated per the DESIGN.md substitution table:
//!
//! - [`werner`] — Werner-pair algebra: swapping, BBPSSW purification,
//!   memory decay, teleportation fidelity;
//! - [`link`] — fiber (0.2 dB/km) and satellite loss models reproducing
//!   the 248 km \[5\] / 1203 km \[6\] operating points and their crossover;
//! - [`repeater`] — Fig. 1(c) repeater chains: rate/fidelity vs distance,
//!   purification trade-offs;
//! - [`teleport`](mod@teleport) — the exact 3-qubit teleportation protocol and its noisy
//!   Werner variant;
//! - [`nonlocal`] — the CHSH game (Example IV.2: quantum 0.8536 vs
//!   classical 0.75) and the GHZ game (1.0 vs 0.75), exact and sampled;
//! - [`qkd`] — BB84 \[62\] with intercept-resend eavesdropper detection;
//! - [`data`] — no-cloning data structures (Sec. IV-B.1): move-only
//!   [`data::QuantumRecord`], destructive reads, teleport-move tables;
//! - [`distributed`] — Sec. IV-B.2: nodes, entanglement banks, QKD-
//!   authenticated two-phase commit with failure injection.

#![warn(missing_docs)]

pub mod data;
pub mod distributed;
pub mod e91;
pub mod link;
pub mod nonlocal;
pub mod qkd;
pub mod repeater;
pub mod teleport;
pub mod werner;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::data::{
        NoCloningViolation, QuantumRecord, QuantumTable, TableError,
        OPTIMAL_UNIVERSAL_CLONER_FIDELITY,
    };
    pub use crate::distributed::{CommitOutcome, NetError, QuantumNetwork, QuantumNode};
    pub use crate::e91::{run_e91, E91Outcome, E91Params};
    pub use crate::link::{fiber_satellite_crossover_km, LinkModel, DEFAULT_ATTEMPT_RATE};
    pub use crate::nonlocal::{
        chsh_classical_optimum, chsh_quantum_value, chsh_sampled, ghz_classical_optimum,
        ghz_quantum_value, ghz_sampled, ChshStrategy, GHZ_INPUTS,
    };
    pub use crate::qkd::{binary_entropy, run_bb84, Bb84Outcome, Bb84Params};
    pub use crate::repeater::{best_chain, ChainPerformance, RepeaterChain};
    pub use crate::teleport::{
        average_werner_fidelity, random_qubit, teleport, teleport_over, teleport_over_werner,
        TeleportOutcome,
    };
    pub use crate::werner::{purification_pump, swap_chain, WernerPair};
}

pub use prelude::*;
