//! Nonlocal games — Sec. IV-A of the paper: the CHSH game
//! (Example IV.2, quantum ≈ 0.85 vs classical 0.75) and the three-player
//! GHZ game (quantum 1.0 vs classical 0.75).
//!
//! Both games are implemented twice: *exactly* (outcome distributions from
//! the state vector) and *operationally* (sampled rounds with measured
//! qubits), plus exhaustive search over classical deterministic strategies
//! for the classical optima.

use qdm_sim::gates;

use qdm_sim::states::{bell_state, ghz_state, BellState};
use rand::Rng;

/// Measurement angles (radians, Z–X plane) for each input bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChshStrategy {
    /// Alice's angle for inputs x = 0, 1.
    pub alice: [f64; 2],
    /// Bob's angle for inputs y = 0, 1.
    pub bob: [f64; 2],
}

impl ChshStrategy {
    /// The optimal quantum strategy: Alice {0, pi/4}, Bob {pi/8, -pi/8},
    /// achieving `cos^2(pi/8) ~ 0.8536` — the paper's "~0.85".
    pub fn optimal() -> Self {
        use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};
        Self { alice: [0.0, FRAC_PI_4], bob: [FRAC_PI_8, -FRAC_PI_8] }
    }
}

/// Probability that measuring `|Phi+>` at angles `(ta, tb)` yields equal
/// outcomes; the joint distribution comes from rotating both qubits into
/// their measurement bases and reading the Born probabilities.
fn chsh_outcome_probs(ta: f64, tb: f64) -> [f64; 4] {
    let mut state = bell_state(BellState::PhiPlus);
    // Measuring in the basis {cos t|0> + sin t|1>, ...} == rotating by
    // RY(-2t) and measuring computationally.
    state.apply_single(0, &gates::ry(-2.0 * ta));
    state.apply_single(1, &gates::ry(-2.0 * tb));
    [
        state.probability(0b00),
        state.probability(0b01),
        state.probability(0b10),
        state.probability(0b11),
    ]
}

/// Exact CHSH winning probability of a strategy, averaged over uniform
/// inputs. Win condition: `x AND y == a XOR b`.
pub fn chsh_quantum_value(strategy: &ChshStrategy) -> f64 {
    let mut total = 0.0;
    for x in 0..2usize {
        for y in 0..2usize {
            let probs = chsh_outcome_probs(strategy.alice[x], strategy.bob[y]);
            let want_equal = (x & y) == 0;
            let p_equal = probs[0b00] + probs[0b11];
            total += if want_equal { p_equal } else { 1.0 - p_equal };
        }
    }
    total / 4.0
}

/// Plays `rounds` sampled CHSH rounds with a fresh Bell pair per round.
pub fn chsh_sampled(strategy: &ChshStrategy, rounds: usize, rng: &mut impl Rng) -> f64 {
    let mut wins = 0usize;
    for _ in 0..rounds {
        let x = rng.random::<bool>();
        let y = rng.random::<bool>();
        let mut state = bell_state(BellState::PhiPlus);
        state.apply_single(0, &gates::ry(-2.0 * strategy.alice[usize::from(x)]));
        state.apply_single(1, &gates::ry(-2.0 * strategy.bob[usize::from(y)]));
        let a = state.measure_qubit(0, rng);
        let b = state.measure_qubit(1, rng);
        if (x && y) == (a ^ b) {
            wins += 1;
        }
    }
    wins as f64 / rounds as f64
}

/// The classical optimum of CHSH by exhaustive search over all 16
/// deterministic strategies (shared randomness cannot beat the best
/// deterministic strategy). Equals 0.75.
pub fn chsh_classical_optimum() -> f64 {
    let mut best = 0.0f64;
    // a(x) and b(y) each range over the 4 functions {0,1}->{0,1}.
    for fa in 0..4u8 {
        for fb in 0..4u8 {
            let a = |x: usize| (fa >> x) & 1;
            let b = |y: usize| (fb >> y) & 1;
            let mut wins = 0;
            for x in 0..2usize {
                for y in 0..2usize {
                    if (x & y) as u8 == (a(x) ^ b(y)) {
                        wins += 1;
                    }
                }
            }
            best = best.max(wins as f64 / 4.0);
        }
    }
    best
}

/// The four promise inputs of the GHZ game: `x ^ y ^ z == 0`.
pub const GHZ_INPUTS: [(bool, bool, bool); 4] =
    [(false, false, false), (true, true, false), (true, false, true), (false, true, true)];

/// Exact GHZ winning probability of the standard quantum strategy
/// (X-basis measurement on input 0, Y-basis on input 1). Win condition:
/// `a ^ b ^ c == x OR y OR z`. Equals 1.
pub fn ghz_quantum_value() -> f64 {
    let mut total = 0.0;
    for &(x, y, z) in &GHZ_INPUTS {
        let mut state = ghz_state(3);
        for (q, input) in [(0usize, x), (1, y), (2, z)] {
            if input {
                // Y-basis: S^dagger then H.
                state.apply_single(q, &gates::s_dagger());
            }
            state.apply_single(q, &gates::hadamard());
        }
        let want = x || y || z;
        let mut p_win = 0.0;
        for outcome in 0..8usize {
            let parity = (outcome.count_ones() % 2) == 1;
            if parity == want {
                p_win += state.probability(outcome);
            }
        }
        total += p_win;
    }
    total / GHZ_INPUTS.len() as f64
}

/// Sampled GHZ rounds with a fresh GHZ state per round.
pub fn ghz_sampled(rounds: usize, rng: &mut impl Rng) -> f64 {
    let mut wins = 0usize;
    for _ in 0..rounds {
        let (x, y, z) = GHZ_INPUTS[rng.random_range(0..4usize)];
        let mut state = ghz_state(3);
        for (q, input) in [(0usize, x), (1, y), (2, z)] {
            if input {
                state.apply_single(q, &gates::s_dagger());
            }
            state.apply_single(q, &gates::hadamard());
        }
        let outcome = state.measure_all(rng);
        let parity = (outcome.count_ones() % 2) == 1;
        if parity == (x || y || z) {
            wins += 1;
        }
    }
    wins as f64 / rounds as f64
}

/// The classical optimum of the GHZ game by exhaustive search over all
/// 64 deterministic three-player strategies. Equals 0.75.
pub fn ghz_classical_optimum() -> f64 {
    let mut best = 0.0f64;
    for fa in 0..4u8 {
        for fb in 0..4u8 {
            for fc in 0..4u8 {
                let f = |table: u8, bit: bool| (table >> usize::from(bit)) & 1 == 1;
                let mut wins = 0;
                for &(x, y, z) in &GHZ_INPUTS {
                    let parity = f(fa, x) ^ f(fb, y) ^ f(fc, z);
                    if parity == (x || y || z) {
                        wins += 1;
                    }
                }
                best = best.max(wins as f64 / GHZ_INPUTS.len() as f64);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chsh_quantum_hits_tsirelson_win_probability() {
        let v = chsh_quantum_value(&ChshStrategy::optimal());
        let want = (std::f64::consts::FRAC_PI_8).cos().powi(2); // ~0.8536
        assert!((v - want).abs() < 1e-10, "quantum value {v}");
        assert!(v > 0.85 && v < 0.86);
    }

    #[test]
    fn chsh_classical_bound_is_three_quarters() {
        assert!((chsh_classical_optimum() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn chsh_quantum_beats_classical_in_samples() {
        let mut rng = StdRng::seed_from_u64(7);
        let sampled = chsh_sampled(&ChshStrategy::optimal(), 20_000, &mut rng);
        assert!(sampled > 0.83 && sampled < 0.875, "sampled CHSH win rate {sampled}");
        assert!(sampled > chsh_classical_optimum());
    }

    #[test]
    fn bad_quantum_strategy_does_not_violate() {
        // Measuring both sides in the same fixed basis wins only 3/4.
        let naive = ChshStrategy { alice: [0.0, 0.0], bob: [0.0, 0.0] };
        let v = chsh_quantum_value(&naive);
        assert!(v <= 0.75 + 1e-10, "naive strategy {v}");
    }

    #[test]
    fn ghz_quantum_wins_always() {
        let v = ghz_quantum_value();
        assert!((v - 1.0).abs() < 1e-10, "GHZ quantum value {v}");
    }

    #[test]
    fn ghz_classical_bound_is_three_quarters() {
        assert!((ghz_classical_optimum() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ghz_sampled_is_perfect() {
        let mut rng = StdRng::seed_from_u64(8);
        let sampled = ghz_sampled(2000, &mut rng);
        assert!((sampled - 1.0).abs() < 1e-12, "sampled GHZ win rate {sampled}");
    }

    #[test]
    fn promise_inputs_have_even_parity() {
        for &(x, y, z) in &GHZ_INPUTS {
            assert!(!(x ^ y ^ z));
        }
    }
}
