//! BB84 quantum key distribution \[62\] — the secure-communication
//! application of Sec. IV-B, run qubit-by-qubit on the simulator.
//!
//! Alice encodes random bits in random Z/X bases; the channel may flip
//! qubits (noise) or pass them through an intercept-resend eavesdropper;
//! Bob measures in random bases. Basis reconciliation (sifting), QBER
//! estimation on sacrificed bits, abort thresholding and the asymptotic
//! secret-key fraction `1 - 2 h2(QBER)` complete the protocol.

use qdm_sim::gates;
use qdm_sim::state::StateVector;
use rand::Rng;

/// Parameters of one BB84 session.
#[derive(Debug, Clone, Copy)]
pub struct Bb84Params {
    /// Number of qubits transmitted.
    pub n_qubits: usize,
    /// Channel bit-flip probability (physical noise).
    pub channel_flip: f64,
    /// Whether an intercept-resend eavesdropper taps the channel.
    pub eavesdropper: bool,
    /// Fraction of sifted bits sacrificed for error estimation.
    pub sample_fraction: f64,
    /// Abort when estimated QBER exceeds this (11% is the BB84 threshold).
    pub qber_threshold: f64,
}

impl Default for Bb84Params {
    fn default() -> Self {
        Self {
            n_qubits: 1024,
            channel_flip: 0.0,
            eavesdropper: false,
            sample_fraction: 0.5,
            qber_threshold: 0.11,
        }
    }
}

/// Outcome of a BB84 session.
#[derive(Debug, Clone, PartialEq)]
pub struct Bb84Outcome {
    /// Bits surviving basis sifting (before sampling).
    pub sifted_bits: usize,
    /// Estimated quantum bit error rate on the sacrificed sample.
    pub qber: f64,
    /// Whether the session aborted (QBER above threshold).
    pub aborted: bool,
    /// The agreed key (empty if aborted).
    pub key: Vec<bool>,
    /// Asymptotic secret-key fraction `max(0, 1 - 2 h2(QBER))`.
    pub secret_fraction: f64,
}

/// Binary entropy `h2(p)`.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

fn encode(bit: bool, x_basis: bool) -> StateVector {
    let mut q = StateVector::new(1);
    if bit {
        q.apply_single(0, &gates::pauli_x());
    }
    if x_basis {
        q.apply_single(0, &gates::hadamard());
    }
    q
}

fn measure_in(q: &mut StateVector, x_basis: bool, rng: &mut impl Rng) -> bool {
    if x_basis {
        q.apply_single(0, &gates::hadamard());
    }
    q.measure_qubit(0, rng)
}

/// Runs one BB84 session.
pub fn run_bb84(params: &Bb84Params, rng: &mut impl Rng) -> Bb84Outcome {
    let mut sifted: Vec<(bool, bool)> = Vec::new(); // (alice_bit, bob_bit)
    for _ in 0..params.n_qubits {
        let alice_bit = rng.random::<bool>();
        let alice_basis = rng.random::<bool>();
        let mut qubit = encode(alice_bit, alice_basis);

        // Eavesdropper: measures in a random basis and resends.
        if params.eavesdropper {
            let eve_basis = rng.random::<bool>();
            let eve_bit = measure_in(&mut qubit, eve_basis, rng);
            qubit = encode(eve_bit, eve_basis);
        }
        // Channel noise: with probability `channel_flip`, a uniformly
        // random Pauli error (so both encoding bases see errors; an
        // X-only channel would be invisible to X-basis states).
        if params.channel_flip > 0.0 && rng.random::<f64>() < params.channel_flip {
            match rng.random_range(0..3) {
                0 => qubit.apply_single(0, &gates::pauli_x()),
                1 => qubit.apply_single(0, &gates::pauli_y()),
                _ => qubit.apply_single(0, &gates::pauli_z()),
            }
        }

        let bob_basis = rng.random::<bool>();
        let bob_bit = measure_in(&mut qubit, bob_basis, rng);
        if bob_basis == alice_basis {
            sifted.push((alice_bit, bob_bit));
        }
    }

    // Sacrifice a sample for error estimation.
    let sample_n = ((sifted.len() as f64) * params.sample_fraction).round() as usize;
    let mut errors = 0usize;
    for &(a, b) in sifted.iter().take(sample_n) {
        if a != b {
            errors += 1;
        }
    }
    let qber = if sample_n > 0 { errors as f64 / sample_n as f64 } else { 0.0 };
    let aborted = qber > params.qber_threshold;
    let key: Vec<bool> =
        if aborted { Vec::new() } else { sifted.iter().skip(sample_n).map(|&(a, _)| a).collect() };
    Bb84Outcome {
        sifted_bits: sifted.len(),
        qber,
        aborted,
        key,
        secret_fraction: (1.0 - 2.0 * binary_entropy(qber)).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn honest_noiseless_channel_agrees_perfectly() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_bb84(&Bb84Params::default(), &mut rng);
        assert!(!out.aborted);
        assert!((out.qber - 0.0).abs() < 1e-12);
        assert!(out.secret_fraction > 0.99);
        // Sifting keeps about half the qubits.
        assert!((out.sifted_bits as f64 - 512.0).abs() < 80.0);
        assert!(!out.key.is_empty());
    }

    #[test]
    fn eavesdropper_is_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = Bb84Params { eavesdropper: true, ..Default::default() };
        let out = run_bb84(&params, &mut rng);
        // Intercept-resend induces 25% QBER.
        assert!((out.qber - 0.25).abs() < 0.06, "qber {}", out.qber);
        assert!(out.aborted, "eavesdropper must trigger an abort");
        assert!(out.key.is_empty());
        assert_eq!(out.secret_fraction, 0.0);
    }

    #[test]
    fn mild_noise_survives_with_reduced_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = Bb84Params { channel_flip: 0.03, n_qubits: 4096, ..Default::default() };
        let out = run_bb84(&params, &mut rng);
        assert!(!out.aborted, "3% noise is under the 11% threshold");
        assert!(out.qber > 0.005 && out.qber < 0.08, "qber {}", out.qber);
        assert!(out.secret_fraction > 0.0 && out.secret_fraction < 1.0);
    }

    #[test]
    fn heavy_noise_aborts() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = Bb84Params { channel_flip: 0.2, n_qubits: 2048, ..Default::default() };
        let out = run_bb84(&params, &mut rng);
        assert!(out.aborted);
    }

    #[test]
    fn binary_entropy_properties() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.11) - binary_entropy(0.89)).abs() < 1e-12);
    }

    #[test]
    fn secret_fraction_zero_at_threshold() {
        // 1 - 2 h2(0.11) ~ 0.0008; beyond ~0.1104 it clamps to 0.
        assert!((1.0 - 2.0 * binary_entropy(0.11)) > 0.0);
        assert!((1.0 - 2.0 * binary_entropy(0.15)) < 0.0);
    }
}
