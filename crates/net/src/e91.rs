//! E91 (Ekert) entanglement-based key distribution.
//!
//! The paper's Sec. IV-B: *"Quantum nonlocality serves as the theoretical
//! foundation of protocols for secure communication and key
//! distribution."* E91 is that sentence as a protocol: Alice and Bob
//! measure halves of shared Bell pairs at random angles; matching-angle
//! rounds become key bits, and the CHSH value `S` estimated from the other
//! rounds *is* the security check — an intercept-resend eavesdropper
//! destroys entanglement and drags `S` below the classical bound 2, even
//! though the key bits themselves can remain perfectly correlated.

use qdm_sim::gates;
use qdm_sim::state::StateVector;
use qdm_sim::states::{bell_state, BellState};
use rand::Rng;

/// Parameters of one E91 session.
#[derive(Debug, Clone, Copy)]
pub struct E91Params {
    /// Entangled pairs distributed.
    pub rounds: usize,
    /// Whether an intercept-resend eavesdropper measures both halves in
    /// the Z basis before delivery.
    pub eavesdropper: bool,
    /// Fidelity of the delivered pairs (1.0 = perfect Bell pairs).
    pub pair_fidelity: f64,
    /// Abort when the estimated CHSH `S` falls at or below this bound
    /// (2.0 = the classical bound).
    pub s_threshold: f64,
}

impl Default for E91Params {
    fn default() -> Self {
        Self { rounds: 4096, eavesdropper: false, pair_fidelity: 1.0, s_threshold: 2.0 }
    }
}

/// Outcome of an E91 session.
#[derive(Debug, Clone, PartialEq)]
pub struct E91Outcome {
    /// Estimated CHSH value from the test rounds.
    pub chsh_s: f64,
    /// Whether the session aborted (S at or below threshold).
    pub aborted: bool,
    /// Key bits from matching-angle rounds (empty if aborted).
    pub key: Vec<bool>,
    /// Error rate among matching-angle rounds.
    pub qber: f64,
    /// Rounds consumed by the CHSH test.
    pub test_rounds: usize,
}

/// Alice's measurement angles: 0, pi/4, pi/8.
const ALICE: [f64; 3] = [0.0, std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_8];
/// Bob's measurement angles: pi/8, -pi/8, 0.
const BOB: [f64; 3] = [std::f64::consts::FRAC_PI_8, -std::f64::consts::FRAC_PI_8, 0.0];

fn sample_werner_pair(fidelity: f64, rng: &mut impl Rng) -> StateVector {
    let f = fidelity.clamp(0.25, 1.0);
    let r: f64 = rng.random::<f64>();
    let which = if r < f {
        BellState::PhiPlus
    } else if r < f + (1.0 - f) / 3.0 {
        BellState::PhiMinus
    } else if r < f + 2.0 * (1.0 - f) / 3.0 {
        BellState::PsiPlus
    } else {
        BellState::PsiMinus
    };
    bell_state(which)
}

/// Runs one E91 session.
pub fn run_e91(params: &E91Params, rng: &mut impl Rng) -> E91Outcome {
    // Correlator accumulators for the four CHSH angle combinations:
    // (A0,B0), (A0,B1), (A1,B0), (A1,B1).
    let mut corr_n = [0usize; 4];
    let mut corr_sum = [0f64; 4];
    let mut key_alice: Vec<bool> = Vec::new();
    let mut errors = 0usize;
    let mut matches = 0usize;
    let mut test_rounds = 0usize;

    for _ in 0..params.rounds {
        let mut pair = sample_werner_pair(params.pair_fidelity, rng);
        if params.eavesdropper {
            // Intercept-resend in Z: collapses the pair to a product state
            // with classical correlations only.
            let _ = pair.measure_qubit(0, rng);
            let _ = pair.measure_qubit(1, rng);
        }
        let ai = rng.random_range(0..3);
        let bi = rng.random_range(0..3);
        pair.apply_single(0, &gates::ry(-2.0 * ALICE[ai]));
        pair.apply_single(1, &gates::ry(-2.0 * BOB[bi]));
        let a = pair.measure_qubit(0, rng);
        let b = pair.measure_qubit(1, rng);
        match (ai, bi) {
            // Matching bases (both angle 0): key material.
            (0, 2) => {
                matches += 1;
                key_alice.push(a);
                if a != b {
                    errors += 1;
                }
            }
            // CHSH combinations.
            (0, 0) | (0, 1) | (1, 0) | (1, 1) => {
                let slot = ai * 2 + bi;
                corr_n[slot] += 1;
                corr_sum[slot] += if a == b { 1.0 } else { -1.0 };
            }
            _ => {}
        }
        if matches!((ai, bi), (0, 0) | (0, 1) | (1, 0) | (1, 1)) {
            test_rounds += 1;
        }
    }

    let e = |slot: usize| {
        if corr_n[slot] == 0 {
            0.0
        } else {
            corr_sum[slot] / corr_n[slot] as f64
        }
    };
    // S = E(A0,B0) + E(A0,B1) + E(A1,B0) - E(A1,B1).
    let chsh_s = e(0) + e(1) + e(2) - e(3);
    let aborted = chsh_s <= params.s_threshold;
    let qber = if matches > 0 { errors as f64 / matches as f64 } else { 0.0 };
    E91Outcome {
        chsh_s,
        aborted,
        key: if aborted { Vec::new() } else { key_alice },
        qber,
        test_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::werner::WernerPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn honest_session_violates_bell_and_yields_key() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_e91(&E91Params::default(), &mut rng);
        assert!((out.chsh_s - 2.0 * std::f64::consts::SQRT_2).abs() < 0.15, "S = {}", out.chsh_s);
        assert!(!out.aborted);
        assert!(out.qber < 0.01, "QBER {}", out.qber);
        assert!(!out.key.is_empty());
    }

    #[test]
    fn eavesdropper_breaks_the_bell_violation() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = E91Params { eavesdropper: true, ..Default::default() };
        let out = run_e91(&params, &mut rng);
        assert!(out.chsh_s < 2.0, "S = {} should drop below classical", out.chsh_s);
        assert!(out.aborted);
        assert!(out.key.is_empty());
        // The subtle point: Z-basis intercept-resend keeps key rounds
        // correlated — only the CHSH test catches Eve.
        assert!(out.qber < 0.05, "key-round QBER stays low: {}", out.qber);
    }

    #[test]
    fn degraded_pairs_reduce_s_proportionally() {
        let mut rng = StdRng::seed_from_u64(3);
        // Werner pairs: S = 2 sqrt 2 (4F-1)/3.
        for f in [0.95, 0.85] {
            let params = E91Params { pair_fidelity: f, rounds: 20_000, ..Default::default() };
            let out = run_e91(&params, &mut rng);
            let expected = WernerPair::new(f).chsh_value();
            assert!(
                (out.chsh_s - expected).abs() < 0.12,
                "F={f}: S {} vs expected {expected}",
                out.chsh_s
            );
        }
    }

    #[test]
    fn separable_pairs_abort() {
        let mut rng = StdRng::seed_from_u64(4);
        let params = E91Params { pair_fidelity: 0.5, ..Default::default() };
        let out = run_e91(&params, &mut rng);
        assert!(out.aborted, "S = {}", out.chsh_s);
    }
}
