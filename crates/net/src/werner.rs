//! Werner-pair algebra: the standard analytic model of noisy entangled
//! pairs distributed over a quantum internet.
//!
//! A Werner pair with fidelity `F` is the mixture
//! `rho = F |Phi+><Phi+| + (1-F)/3 (I - |Phi+><Phi+|)`; `F = 1` is the
//! perfect Bell pair of the paper's Example IV.1 and `F = 1/4` is
//! maximally mixed. Entanglement swapping (what the Fig. 1c repeater does)
//! and DEJMPS/BBPSSW purification have closed forms on `F`, which is what
//! makes chain-level analysis tractable.

/// A two-qubit Werner pair characterized by its fidelity to `|Phi+>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WernerPair {
    /// Fidelity to the perfect Bell pair, in `[1/4, 1]`.
    pub fidelity: f64,
}

impl WernerPair {
    /// A perfect Bell pair.
    pub fn perfect() -> Self {
        Self { fidelity: 1.0 }
    }

    /// Creates a pair, clamping into the physical range `[1/4, 1]`.
    pub fn new(fidelity: f64) -> Self {
        Self { fidelity: fidelity.clamp(0.25, 1.0) }
    }

    /// Whether the pair is still entangled (distillable): `F > 1/2`.
    pub fn is_entangled(&self) -> bool {
        self.fidelity > 0.5
    }

    /// Entanglement swapping at a repeater: consumes `self` (A–R) and
    /// `other` (R–B), produces an A–B pair with the standard Werner
    /// composition `F' = F1*F2 + (1-F1)(1-F2)/3`.
    pub fn swap(self, other: WernerPair) -> WernerPair {
        let (f1, f2) = (self.fidelity, other.fidelity);
        WernerPair::new(f1 * f2 + (1.0 - f1) * (1.0 - f2) / 3.0)
    }

    /// BBPSSW purification: consumes two pairs of equal fidelity `F`,
    /// succeeding with probability
    /// `p = F^2 + 2F(1-F)/3 + 5((1-F)/3)^2` and yielding
    /// `F' = (F^2 + ((1-F)/3)^2) / p`. Improves fidelity iff `F > 1/2`.
    ///
    /// Returns `(success_probability, purified_pair)`.
    pub fn purify(self, other: WernerPair) -> (f64, WernerPair) {
        // Standard BBPSSW applies to equal-fidelity inputs; for unequal
        // inputs we use the generalized bilinear form.
        let (f1, f2) = (self.fidelity, other.fidelity);
        let (g1, g2) = ((1.0 - f1) / 3.0, (1.0 - f2) / 3.0);
        let p_succ = f1 * f2 + f1 * g2 + g1 * f2 + 5.0 * g1 * g2;
        let f_out = (f1 * f2 + g1 * g2) / p_succ;
        (p_succ, WernerPair::new(f_out))
    }

    /// Memory decoherence: depolarization towards the maximally mixed
    /// state with time constant `t_coh`:
    /// `F(t) = 1/4 + (F0 - 1/4) e^{-t/t_coh}`.
    pub fn decay(self, elapsed: f64, t_coh: f64) -> WernerPair {
        let decayed = 0.25 + (self.fidelity - 0.25) * (-elapsed / t_coh).exp();
        WernerPair::new(decayed)
    }

    /// Fidelity of teleporting an arbitrary unknown qubit over this pair:
    /// `F_tele = (2F + 1) / 3` (averaged over payloads).
    pub fn teleportation_fidelity(&self) -> f64 {
        (2.0 * self.fidelity + 1.0) / 3.0
    }

    /// The CHSH value achievable with this pair:
    /// `S = 2*sqrt(2) * (4F - 1) / 3`; violates the classical bound 2 iff
    /// `F > (3/sqrt(8) + 1) / 4 ~ 0.78`.
    pub fn chsh_value(&self) -> f64 {
        2.0 * std::f64::consts::SQRT_2 * (4.0 * self.fidelity - 1.0) / 3.0
    }
}

/// End-to-end fidelity of swapping a chain of pairs left to right.
pub fn swap_chain(pairs: &[WernerPair]) -> Option<WernerPair> {
    let mut iter = pairs.iter();
    let first = *iter.next()?;
    Some(iter.fold(first, |acc, p| acc.swap(*p)))
}

/// Repeated purification: pumps `rounds` sacrificial pairs of fidelity
/// `raw` into a kept pair, returning the final fidelity and the expected
/// number of raw pairs consumed (accounting for failure retries).
pub fn purification_pump(raw: WernerPair, rounds: usize) -> (WernerPair, f64) {
    let mut kept = raw;
    let mut expected_cost = 1.0;
    for _ in 0..rounds {
        let (p, out) = kept.purify(raw);
        // On failure both pairs are lost and the round restarts: the
        // expected raw-pair cost of one successful round is (cost_kept+1)/p.
        expected_cost = (expected_cost + 1.0) / p.max(1e-9);
        kept = out;
    }
    (kept, expected_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_pairs_swap_perfectly() {
        let out = WernerPair::perfect().swap(WernerPair::perfect());
        assert!((out.fidelity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_degrades_fidelity() {
        let a = WernerPair::new(0.95);
        let out = a.swap(a);
        assert!(out.fidelity < 0.95);
        assert!(out.fidelity > 0.85);
        // Explicit value: 0.95^2 + 0.05^2/3.
        assert!((out.fidelity - (0.9025 + 0.0025 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn swapping_maximally_mixed_stays_mixed() {
        let mixed = WernerPair::new(0.25);
        let out = mixed.swap(WernerPair::perfect());
        assert!((out.fidelity - 0.25).abs() < 1e-12);
    }

    #[test]
    fn purification_improves_above_half() {
        let f = WernerPair::new(0.7);
        let (p, out) = f.purify(f);
        assert!(p > 0.0 && p <= 1.0);
        assert!(out.fidelity > 0.7, "purified {} <= 0.7", out.fidelity);
    }

    #[test]
    fn purification_does_not_help_below_half() {
        let f = WernerPair::new(0.45);
        let (_, out) = f.purify(f);
        assert!(out.fidelity <= 0.5001);
    }

    #[test]
    fn purification_fixpoint_at_one() {
        let f = WernerPair::perfect();
        let (p, out) = f.purify(f);
        assert!((p - 1.0).abs() < 1e-12);
        assert!((out.fidelity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decay_approaches_maximally_mixed() {
        let f = WernerPair::new(0.9);
        let soon = f.decay(0.1, 1.0);
        let late = f.decay(10.0, 1.0);
        assert!(soon.fidelity < 0.9 && soon.fidelity > late.fidelity);
        assert!((late.fidelity - 0.25).abs() < 0.01);
    }

    #[test]
    fn teleportation_fidelity_formula() {
        assert!((WernerPair::perfect().teleportation_fidelity() - 1.0).abs() < 1e-12);
        // Classical limit: a maximally mixed pair gives 0.5 (random guess).
        assert!((WernerPair::new(0.25).teleportation_fidelity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chsh_violation_threshold() {
        assert!(WernerPair::perfect().chsh_value() > 2.0);
        assert!(
            (WernerPair::perfect().chsh_value() - 2.0 * std::f64::consts::SQRT_2).abs() < 1e-12
        );
        assert!(WernerPair::new(0.7).chsh_value() < 2.0);
    }

    #[test]
    fn chain_swapping_composes() {
        let pairs = vec![WernerPair::new(0.95); 4];
        let end = swap_chain(&pairs).expect("non-empty chain");
        let manual = WernerPair::new(0.95)
            .swap(WernerPair::new(0.95))
            .swap(WernerPair::new(0.95))
            .swap(WernerPair::new(0.95));
        assert!((end.fidelity - manual.fidelity).abs() < 1e-12);
        assert!(swap_chain(&[]).is_none());
    }

    #[test]
    fn pump_raises_fidelity_at_a_cost() {
        let raw = WernerPair::new(0.8);
        let (out, cost) = purification_pump(raw, 3);
        // Pumping with fixed-fidelity sacrificial pairs saturates below 1;
        // three rounds take 0.8 to ~0.864.
        assert!(out.fidelity > 0.85 && out.fidelity > raw.fidelity, "F = {}", out.fidelity);
        assert!(cost > 3.0, "purification must consume extra pairs, cost {cost}");
    }
}
