//! Distributed data management over a quantum internet — the paper's
//! Sec. IV-B.2: "new system architectures" built on quantum-internet
//! protocols, with fault tolerance and recovery under hardware/link
//! failures \[67\].
//!
//! A [`QuantumNetwork`] holds named nodes connected by physical links.
//! Entanglement is a managed *resource*: links generate Werner pairs into
//! per-edge banks (with decoherence while parked), records move only by
//! teleportation (consuming pairs), commit decisions travel over
//! QKD-authenticated classical channels, and a two-phase commit with
//! failure injection exercises the recovery story.

use crate::data::{QuantumRecord, QuantumTable, TableError};
use crate::link::LinkModel;
use crate::qkd::{run_bb84, Bb84Params};
use crate::werner::WernerPair;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// A node: quantum memory plus per-peer resources.
#[derive(Debug, Default)]
pub struct QuantumNode {
    /// Records stored at this node.
    pub table: QuantumTable,
}

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Unknown node name.
    UnknownNode(String),
    /// No physical link between the two nodes.
    NoLink(String, String),
    /// Entanglement generation failed within the attempt budget.
    GenerationTimeout,
    /// Table-level failure.
    Table(TableError),
    /// No QKD key material left between the two nodes.
    NoKeyMaterial,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::NoLink(a, b) => write!(f, "no link between {a} and {b}"),
            NetError::GenerationTimeout => write!(f, "entanglement generation timed out"),
            NetError::Table(e) => write!(f, "table error: {e}"),
            NetError::NoKeyMaterial => write!(f, "no QKD key material"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<TableError> for NetError {
    fn from(e: TableError) -> Self {
        NetError::Table(e)
    }
}

/// Outcome of a distributed commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOutcome {
    /// All participants acknowledged both phases.
    Committed {
        /// Message retransmissions needed.
        retries: u32,
    },
    /// A participant voted no or exhausted retries.
    Aborted {
        /// Human-readable reason.
        reason: String,
    },
}

/// A network of quantum nodes.
#[derive(Debug, Default)]
pub struct QuantumNetwork {
    nodes: HashMap<String, QuantumNode>,
    links: HashMap<(String, String), LinkModel>,
    pair_banks: HashMap<(String, String), Vec<WernerPair>>,
    key_material: HashMap<(String, String), usize>,
    /// Probability that a classical message is lost (failure injection).
    pub message_loss: f64,
    /// Maximum retransmissions before a 2PC round aborts.
    pub max_retries: u32,
}

fn edge(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl QuantumNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self { max_retries: 5, ..Self::default() }
    }

    /// Adds a node.
    pub fn add_node(&mut self, name: impl Into<String>) {
        self.nodes.entry(name.into()).or_default();
    }

    /// Connects two nodes with a physical link.
    ///
    /// # Panics
    /// Panics if either node is unknown.
    pub fn add_link(&mut self, a: &str, b: &str, link: LinkModel) {
        assert!(self.nodes.contains_key(a), "unknown node {a}");
        assert!(self.nodes.contains_key(b), "unknown node {b}");
        self.links.insert(edge(a, b), link);
    }

    /// Mutable access to a node's storage.
    pub fn node_mut(&mut self, name: &str) -> Result<&mut QuantumNode, NetError> {
        self.nodes.get_mut(name).ok_or_else(|| NetError::UnknownNode(name.into()))
    }

    /// Pairs currently banked between two nodes.
    pub fn entanglement_available(&self, a: &str, b: &str) -> usize {
        self.pair_banks.get(&edge(a, b)).map_or(0, Vec::len)
    }

    /// Generates `count` entangled pairs between two linked nodes, spending
    /// up to `max_attempts` source attempts per pair.
    pub fn generate_entanglement(
        &mut self,
        a: &str,
        b: &str,
        count: usize,
        max_attempts: u64,
        rng: &mut impl Rng,
    ) -> Result<u64, NetError> {
        let link =
            *self.links.get(&edge(a, b)).ok_or_else(|| NetError::NoLink(a.into(), b.into()))?;
        let mut total_attempts = 0u64;
        let bank = self.pair_banks.entry(edge(a, b)).or_default();
        for _ in 0..count {
            match link.try_generate(max_attempts, rng) {
                Some((attempts, pair)) => {
                    total_attempts += attempts;
                    bank.push(pair);
                }
                None => return Err(NetError::GenerationTimeout),
            }
        }
        Ok(total_attempts)
    }

    /// Ages all banked pairs by `elapsed` time units against a coherence
    /// time `t_coh`, dropping pairs that decohere below usefulness.
    pub fn age_entanglement(&mut self, elapsed: f64, t_coh: f64) {
        for bank in self.pair_banks.values_mut() {
            for p in bank.iter_mut() {
                *p = p.decay(elapsed, t_coh);
            }
            bank.retain(|p| p.is_entangled());
        }
    }

    /// Runs BB84 over the link to provision `bits` of key material.
    pub fn establish_key(
        &mut self,
        a: &str,
        b: &str,
        bits: usize,
        rng: &mut impl Rng,
    ) -> Result<usize, NetError> {
        if !self.links.contains_key(&edge(a, b)) {
            return Err(NetError::NoLink(a.into(), b.into()));
        }
        let params = Bb84Params { n_qubits: bits * 4, ..Default::default() };
        let out = run_bb84(&params, rng);
        let got = out.key.len().min(bits);
        *self.key_material.entry(edge(a, b)).or_insert(0) += got;
        Ok(got)
    }

    /// Key bits remaining between two nodes.
    pub fn key_available(&self, a: &str, b: &str) -> usize {
        self.key_material.get(&edge(a, b)).copied().unwrap_or(0)
    }

    fn spend_key(&mut self, a: &str, b: &str, bits: usize) -> Result<(), NetError> {
        let k = self
            .key_material
            .get_mut(&edge(a, b))
            .filter(|k| **k >= bits)
            .ok_or(NetError::NoKeyMaterial)?;
        *k -= bits;
        Ok(())
    }

    /// Stores a record at a node.
    pub fn store(&mut self, node: &str, record: QuantumRecord) -> Result<(), NetError> {
        Ok(self.node_mut(node)?.table.insert(record)?)
    }

    /// Teleports a record between adjacent nodes, consuming banked pairs.
    /// Returns the delivered fidelity.
    pub fn teleport_record(
        &mut self,
        from: &str,
        to: &str,
        key: u64,
        rng: &mut impl Rng,
    ) -> Result<f64, NetError> {
        if !self.nodes.contains_key(from) {
            return Err(NetError::UnknownNode(from.into()));
        }
        if !self.nodes.contains_key(to) {
            return Err(NetError::UnknownNode(to.into()));
        }
        let bank_key = edge(from, to);
        let mut bank = self.pair_banks.remove(&bank_key).unwrap_or_default();
        // Split-borrow the two node tables.
        let [src, dst] = self
            .nodes
            .get_disjoint_mut([from, to])
            .map(|o| o.ok_or_else(|| NetError::UnknownNode("?".into())));
        let (src, dst) = (src?, dst?);
        let result = src.table.teleport_to(key, &mut dst.table, &mut bank, rng);
        self.pair_banks.insert(bank_key, bank);
        Ok(result?)
    }

    /// An authenticated message send: costs `auth_bits` of QKD key and may
    /// be lost with `message_loss` probability (retried by the caller).
    fn send_authenticated(
        &mut self,
        a: &str,
        b: &str,
        auth_bits: usize,
        rng: &mut impl Rng,
    ) -> Result<bool, NetError> {
        self.spend_key(a, b, auth_bits)?;
        Ok(rng.random::<f64>() >= self.message_loss)
    }

    /// Quantum-authenticated two-phase commit: the coordinator sends
    /// PREPARE and COMMIT messages (each authenticated with QKD key bits)
    /// to every participant, retrying lost messages up to `max_retries`.
    /// Each participant votes yes with probability `vote_yes`.
    pub fn two_phase_commit(
        &mut self,
        coordinator: &str,
        participants: &[&str],
        vote_yes: f64,
        rng: &mut impl Rng,
    ) -> Result<CommitOutcome, NetError> {
        const AUTH_BITS: usize = 8;
        let mut retries = 0u32;
        // Phase 1: PREPARE + votes.
        for p in participants {
            let mut delivered = false;
            while !delivered {
                match self.send_authenticated(coordinator, p, AUTH_BITS, rng) {
                    Ok(true) => delivered = true,
                    Ok(false) => {
                        retries += 1;
                        if retries > self.max_retries {
                            return Ok(CommitOutcome::Aborted {
                                reason: format!("PREPARE to {p} lost too often"),
                            });
                        }
                    }
                    Err(NetError::NoKeyMaterial) => {
                        return Ok(CommitOutcome::Aborted {
                            reason: format!("no key material for {p}"),
                        })
                    }
                    Err(e) => return Err(e),
                }
            }
            if rng.random::<f64>() >= vote_yes {
                return Ok(CommitOutcome::Aborted { reason: format!("{p} voted no") });
            }
        }
        // Phase 2: COMMIT.
        for p in participants {
            let mut delivered = false;
            while !delivered {
                match self.send_authenticated(coordinator, p, AUTH_BITS, rng) {
                    Ok(true) => delivered = true,
                    Ok(false) => {
                        retries += 1;
                        if retries > self.max_retries {
                            return Ok(CommitOutcome::Aborted {
                                reason: format!("COMMIT to {p} lost too often"),
                            });
                        }
                    }
                    Err(NetError::NoKeyMaterial) => {
                        return Ok(CommitOutcome::Aborted {
                            reason: format!("no key material for {p}"),
                        })
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(CommitOutcome::Committed { retries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_node_net() -> QuantumNetwork {
        let mut net = QuantumNetwork::new();
        net.add_node("amsterdam");
        net.add_node("delft");
        net.add_link("amsterdam", "delft", LinkModel::fiber(60.0));
        net
    }

    #[test]
    fn entanglement_generation_fills_banks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = two_node_net();
        let attempts = net
            .generate_entanglement("amsterdam", "delft", 5, 100_000, &mut rng)
            .expect("generation succeeds");
        assert!(attempts >= 5);
        assert_eq!(net.entanglement_available("amsterdam", "delft"), 5);
        assert_eq!(net.entanglement_available("delft", "amsterdam"), 5);
    }

    #[test]
    fn missing_link_is_an_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = two_node_net();
        net.add_node("tokyo");
        let err = net.generate_entanglement("amsterdam", "tokyo", 1, 10, &mut rng);
        assert!(matches!(err, Err(NetError::NoLink(_, _))));
    }

    #[test]
    fn record_teleportation_consumes_entanglement() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = two_node_net();
        net.generate_entanglement("amsterdam", "delft", 3, 100_000, &mut rng).expect("generation");
        net.store("amsterdam", QuantumRecord::from_classical(7, 1, 1)).expect("store");
        let fidelity = net.teleport_record("amsterdam", "delft", 7, &mut rng).expect("teleport");
        assert!(fidelity > 0.9);
        assert_eq!(net.entanglement_available("amsterdam", "delft"), 2);
        assert!(net.node_mut("amsterdam").unwrap().table.is_empty());
        assert_eq!(net.node_mut("delft").unwrap().table.keys(), vec![7]);
    }

    #[test]
    fn teleport_without_pairs_fails_atomically() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = two_node_net();
        net.store("amsterdam", QuantumRecord::from_classical(9, 1, 0)).expect("store");
        let err = net.teleport_record("amsterdam", "delft", 9, &mut rng);
        assert!(matches!(err, Err(NetError::Table(TableError::InsufficientEntanglement { .. }))));
        assert_eq!(net.node_mut("amsterdam").unwrap().table.keys(), vec![9]);
    }

    #[test]
    fn aging_degrades_and_purges_pairs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = two_node_net();
        net.generate_entanglement("amsterdam", "delft", 4, 100_000, &mut rng).expect("generation");
        net.age_entanglement(0.1, 1.0);
        assert_eq!(net.entanglement_available("amsterdam", "delft"), 4);
        // Long decoherence wipes the bank.
        net.age_entanglement(50.0, 1.0);
        assert_eq!(net.entanglement_available("amsterdam", "delft"), 0);
    }

    #[test]
    fn qkd_provisioning_and_spending() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = two_node_net();
        let got = net.establish_key("amsterdam", "delft", 64, &mut rng).expect("qkd");
        assert!(got > 0);
        assert_eq!(net.key_available("amsterdam", "delft"), got);
    }

    #[test]
    fn two_phase_commit_happy_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = two_node_net();
        net.add_node("rotterdam");
        net.add_link("amsterdam", "rotterdam", LinkModel::fiber(40.0));
        net.establish_key("amsterdam", "delft", 64, &mut rng).expect("key");
        net.establish_key("amsterdam", "rotterdam", 64, &mut rng).expect("key");
        let out = net
            .two_phase_commit("amsterdam", &["delft", "rotterdam"], 1.0, &mut rng)
            .expect("protocol runs");
        assert!(matches!(out, CommitOutcome::Committed { .. }));
    }

    #[test]
    fn two_phase_commit_aborts_on_no_vote() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = two_node_net();
        net.establish_key("amsterdam", "delft", 64, &mut rng).expect("key");
        let out =
            net.two_phase_commit("amsterdam", &["delft"], 0.0, &mut rng).expect("protocol runs");
        assert!(matches!(out, CommitOutcome::Aborted { .. }));
    }

    #[test]
    fn two_phase_commit_survives_message_loss_with_retries() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = two_node_net();
        net.establish_key("amsterdam", "delft", 512, &mut rng).expect("key");
        net.message_loss = 0.3;
        net.max_retries = 50;
        let out =
            net.two_phase_commit("amsterdam", &["delft"], 1.0, &mut rng).expect("protocol runs");
        match out {
            CommitOutcome::Committed { retries } => {
                // With 30% loss some retries are overwhelmingly likely ...
                // but zero is possible; just confirm the commit happened.
                assert!(retries <= 50);
            }
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn commit_without_key_material_aborts() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = two_node_net();
        let out =
            net.two_phase_commit("amsterdam", &["delft"], 1.0, &mut rng).expect("protocol runs");
        assert!(matches!(out, CommitOutcome::Aborted { .. }));
    }
}
