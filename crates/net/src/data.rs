//! No-cloning data structures — the paper's Sec. IV-B.1 research direction:
//! *"How to design data models, when quantum data cannot be copied without
//! destroying the original version?"*
//!
//! The answer this module encodes in the type system:
//!
//! - [`QuantumRecord`] deliberately does **not** implement `Clone` — the
//!   no-cloning theorem is enforced at compile time (see the `compile_fail`
//!   doctest);
//! - reading a record ([`QuantumRecord::read_destructive`]) consumes it,
//!   because measurement collapses the state;
//! - moving a record between nodes ([`QuantumTable::teleport_to`])
//!   consumes both the record and one entangled pair, mirroring
//!   teleportation semantics (the original ceases to exist).
//!
//! ```compile_fail
//! use qdm_net::data::QuantumRecord;
//! let r = QuantumRecord::from_classical(1, 2, 0b10);
//! let copy = r.clone(); // ERROR: QuantumRecord is not Clone — no-cloning!
//! ```

use crate::teleport::teleport_over;
use crate::werner::WernerPair;
use qdm_sim::state::StateVector;
use qdm_sim::states::{bell_state, BellState};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Error raised when code *attempts* a copy through the runtime API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoCloningViolation;

impl fmt::Display for NoCloningViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "the no-cloning theorem forbids copying an arbitrary quantum state")
    }
}

impl std::error::Error for NoCloningViolation {}

/// Fidelity of the best physically allowed universal cloner (Buzek–Hillery):
/// 5/6 per copy — perfect copying is impossible, which is why this module
/// offers no `clone` at all.
pub const OPTIMAL_UNIVERSAL_CLONER_FIDELITY: f64 = 5.0 / 6.0;

/// A data record whose payload is a quantum state. Move-only by design.
#[derive(Debug)]
pub struct QuantumRecord {
    key: u64,
    payload: StateVector,
}

impl QuantumRecord {
    /// Wraps a quantum payload under a classical key.
    pub fn new(key: u64, payload: StateVector) -> Self {
        Self { key, payload }
    }

    /// Encodes classical bits as a computational basis state (the
    /// degenerate case that *could* be copied — but the type doesn't know
    /// that, so it is still move-only).
    pub fn from_classical(key: u64, n_qubits: usize, value: usize) -> Self {
        Self { key, payload: StateVector::basis_state(n_qubits, value) }
    }

    /// The classical key (keys are classical metadata and freely readable).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Width of the payload register.
    pub fn n_qubits(&self) -> usize {
        self.payload.n_qubits()
    }

    /// Runtime cloning attempt: always refused. The compile-time story is
    /// stronger (no `Clone` impl); this exists so higher layers can report
    /// the violation gracefully instead of failing to compile generic code.
    pub fn try_clone(&self) -> Result<QuantumRecord, NoCloningViolation> {
        Err(NoCloningViolation)
    }

    /// Destructive read: measures the full payload, CONSUMING the record.
    /// Returns the classical outcome — the superposition is gone.
    pub fn read_destructive(mut self, rng: &mut impl Rng) -> (u64, usize) {
        let outcome = self.payload.measure_all(rng);
        (self.key, outcome)
    }

    /// Non-destructive fidelity check against a reference state — only
    /// possible inside the simulator (physically this would require many
    /// copies); used by tests and experiments, not by the data model.
    pub fn debug_fidelity(&self, reference: &StateVector) -> f64 {
        self.payload.fidelity(reference)
    }

    fn into_payload(self) -> (u64, StateVector) {
        (self.key, self.payload)
    }
}

/// A table of quantum records keyed by classical keys.
#[derive(Debug, Default)]
pub struct QuantumTable {
    records: BTreeMap<u64, QuantumRecord>,
}

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Key already present (records cannot be overwritten — that would
    /// destroy a quantum state implicitly).
    DuplicateKey(u64),
    /// No record under this key.
    Missing(u64),
    /// Teleportation needs one entangled pair per payload qubit.
    InsufficientEntanglement {
        /// Pairs needed.
        needed: usize,
        /// Pairs available.
        available: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateKey(k) => write!(f, "key {k} already present"),
            TableError::Missing(k) => write!(f, "no record with key {k}"),
            TableError::InsufficientEntanglement { needed, available } => {
                write!(f, "need {needed} entangled pairs, have {available}")
            }
        }
    }
}

impl std::error::Error for TableError {}

impl QuantumTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The stored keys (classical metadata, freely listable).
    pub fn keys(&self) -> Vec<u64> {
        self.records.keys().copied().collect()
    }

    /// Inserts a record, refusing duplicates.
    pub fn insert(&mut self, record: QuantumRecord) -> Result<(), TableError> {
        let key = record.key();
        if self.records.contains_key(&key) {
            return Err(TableError::DuplicateKey(key));
        }
        self.records.insert(key, record);
        Ok(())
    }

    /// Moves a record out of the table (the only way to access a payload).
    pub fn take(&mut self, key: u64) -> Result<QuantumRecord, TableError> {
        self.records.remove(&key).ok_or(TableError::Missing(key))
    }

    /// Teleports a record into another table over a bank of entangled
    /// pairs (one per payload qubit, consumed). The record is removed from
    /// `self` — after this call the original does not exist anywhere, per
    /// teleportation semantics. Returns the average payload fidelity
    /// preserved (1.0 over perfect pairs).
    pub fn teleport_to(
        &mut self,
        key: u64,
        destination: &mut QuantumTable,
        pair_bank: &mut Vec<WernerPair>,
        rng: &mut impl Rng,
    ) -> Result<f64, TableError> {
        let record = self.take(key)?;
        let needed = record.n_qubits();
        if pair_bank.len() < needed {
            let err = TableError::InsufficientEntanglement { needed, available: pair_bank.len() };
            // Put the record back; the operation must be atomic.
            self.records.insert(key, record);
            return Err(err);
        }
        let (key, payload) = record.into_payload();
        // Teleport qubit-by-qubit (single-qubit payloads use the exact
        // circuit; multi-qubit payloads are teleported per qubit in the
        // product approximation, with fidelity tracked analytically).
        let mut fidelity = 1.0;
        if payload.n_qubits() == 1 {
            let pair = pair_bank.pop().expect("checked above");
            let resource = bell_state(BellState::PhiPlus);
            let outcome = teleport_over(&payload, &resource, rng);
            // Werner-pair quality degrades delivered fidelity analytically.
            fidelity = pair.teleportation_fidelity() * outcome.delivered.fidelity(&payload);
            destination.records.insert(key, QuantumRecord::new(key, outcome.delivered));
        } else {
            for _ in 0..needed {
                let pair = pair_bank.pop().expect("checked above");
                fidelity *= pair.teleportation_fidelity();
            }
            destination.records.insert(key, QuantumRecord::new(key, payload));
        }
        Ok(fidelity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::teleport::random_qubit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn runtime_clone_attempts_are_refused() {
        let r = QuantumRecord::from_classical(1, 2, 0b01);
        assert_eq!(r.try_clone().unwrap_err(), NoCloningViolation);
        // The record itself is still usable afterwards.
        assert_eq!(r.key(), 1);
    }

    #[test]
    fn destructive_read_consumes_and_collapses() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = QuantumRecord::from_classical(7, 3, 0b101);
        let (key, value) = r.read_destructive(&mut rng);
        assert_eq!(key, 7);
        assert_eq!(value, 0b101);
        // `r` is moved — using it again would not compile.
    }

    #[test]
    fn superposed_record_reads_probabilistically() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut zeros = 0;
        for _ in 0..200 {
            let mut s = StateVector::new(1);
            s.apply_single(0, &qdm_sim::gates::hadamard());
            let r = QuantumRecord::new(9, s);
            let (_, v) = r.read_destructive(&mut rng);
            if v == 0 {
                zeros += 1;
            }
        }
        assert!((80..=120).contains(&zeros), "50/50 collapse expected, got {zeros}/200");
    }

    #[test]
    fn table_insert_take_and_duplicate_protection() {
        let mut t = QuantumTable::new();
        t.insert(QuantumRecord::from_classical(1, 1, 0)).expect("insert");
        t.insert(QuantumRecord::from_classical(2, 1, 1)).expect("insert");
        assert_eq!(t.keys(), vec![1, 2]);
        assert_eq!(
            t.insert(QuantumRecord::from_classical(1, 1, 1)),
            Err(TableError::DuplicateKey(1))
        );
        let r = t.take(1).expect("take");
        assert_eq!(r.key(), 1);
        assert!(matches!(t.take(1), Err(TableError::Missing(1))));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn teleport_moves_record_between_tables() {
        let mut rng = StdRng::seed_from_u64(3);
        let payload = random_qubit(&mut rng);
        let reference = payload.clone();
        let mut a = QuantumTable::new();
        let mut b = QuantumTable::new();
        a.insert(QuantumRecord::new(42, payload)).expect("insert");
        let mut bank = vec![WernerPair::perfect()];
        let fidelity = a.teleport_to(42, &mut b, &mut bank, &mut rng).expect("teleport");
        assert!(a.is_empty(), "original must be gone");
        assert_eq!(b.keys(), vec![42]);
        assert!((fidelity - 1.0).abs() < 1e-10);
        assert!(bank.is_empty(), "the pair was consumed");
        let delivered = b.take(42).expect("delivered");
        assert!((delivered.debug_fidelity(&reference) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn teleport_without_entanglement_is_atomic() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = QuantumTable::new();
        let mut b = QuantumTable::new();
        a.insert(QuantumRecord::from_classical(5, 2, 0b11)).expect("insert");
        let mut bank: Vec<WernerPair> = Vec::new();
        let err = a.teleport_to(5, &mut b, &mut bank, &mut rng).unwrap_err();
        assert_eq!(err, TableError::InsufficientEntanglement { needed: 2, available: 0 });
        // Record must still be in the source table.
        assert_eq!(a.keys(), vec![5]);
        assert!(b.is_empty());
    }

    #[test]
    fn noisy_pairs_reduce_delivered_fidelity() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = QuantumTable::new();
        let mut b = QuantumTable::new();
        a.insert(QuantumRecord::new(1, random_qubit(&mut rng))).expect("insert");
        let mut bank = vec![WernerPair::new(0.7)];
        let fidelity = a.teleport_to(1, &mut b, &mut bank, &mut rng).expect("teleport");
        assert!(fidelity < 0.9, "Werner noise must show up, got {fidelity}");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn cloner_bound_is_strictly_below_one() {
        assert!(OPTIMAL_UNIVERSAL_CLONER_FIDELITY < 1.0);
        assert!((OPTIMAL_UNIVERSAL_CLONER_FIDELITY - 5.0 / 6.0).abs() < 1e-15);
    }
}
