//! Quantum phase estimation (QPE) — one of the algorithm boxes the paper's
//! Fig. 2 lists as a route from data-management problems to gate-based
//! quantum computers.
//!
//! Given a unitary with eigenvalue `e^{2 pi i phi}` (here: a phase rotation
//! whose eigenstate is trivially prepared), QPE with `t` counting qubits
//! estimates `phi` to `t` bits. The circuit is the textbook construction:
//! Hadamard wall, controlled powers `U^{2^k}`, inverse QFT, measurement.

use crate::qft::inverse_qft_circuit;
use qdm_sim::circuit::{Circuit, Gate};
use qdm_sim::state::StateVector;
use rand::Rng;

/// Builds the QPE circuit over `t` counting qubits for a phase-rotation
/// unitary `U = diag(1, e^{2 pi i phi})` with the eigenstate folded away
/// (each controlled-`U^{2^k}` becomes a phase gate on counting qubit `k`).
pub fn qpe_circuit(t: usize, phi: f64) -> Circuit {
    assert!(t >= 1);
    let mut c = Circuit::new(t);
    for q in 0..t {
        c.h(q);
    }
    for (k, q) in (0..t).enumerate() {
        let angle = 2.0 * std::f64::consts::PI * phi * (1u64 << k) as f64;
        c.push(Gate::Phase(q, angle));
    }
    c.extend(&inverse_qft_circuit(t));
    c
}

/// Result of a phase-estimation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseEstimate {
    /// Measured counting-register value.
    pub raw: usize,
    /// Estimated phase `raw / 2^t` in `[0, 1)`.
    pub phase: f64,
}

/// Runs QPE once and returns the measured estimate of `phi`.
pub fn estimate_phase(t: usize, phi: f64, rng: &mut impl Rng) -> PhaseEstimate {
    let mut state = StateVector::new(t);
    qpe_circuit(t, phi).apply_to(&mut state);
    let raw = state.measure_all(rng);
    PhaseEstimate { raw, phase: raw as f64 / (1usize << t) as f64 }
}

/// The exact outcome distribution of the counting register (probability of
/// each raw value), useful for analyzing estimator accuracy without
/// sampling noise.
pub fn outcome_distribution(t: usize, phi: f64) -> Vec<f64> {
    let mut state = StateVector::new(t);
    qpe_circuit(t, phi).apply_to(&mut state);
    state.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exactly_representable_phase_is_deterministic() {
        // phi = 3/8 with 3 counting qubits: outcome 3 with certainty.
        let dist = outcome_distribution(3, 3.0 / 8.0);
        assert!((dist[3] - 1.0).abs() < 1e-9, "dist = {dist:?}");
    }

    #[test]
    fn non_representable_phase_peaks_at_nearest() {
        let phi = 0.3; // between 4/16 and 5/16 with t=4
        let dist = outcome_distribution(4, phi);
        let best = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        assert!(best == 5, "peak at {best}");
        // Standard QPE guarantee: nearest t-bit estimate w.p. >= 4/pi^2.
        assert!(dist[5] >= 4.0 / std::f64::consts::PI.powi(2));
    }

    /// Mean circular error of 20 QPE draws with `t` counting qubits, under
    /// one seed.
    fn mean_error(t: usize, phi: f64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        for _ in 0..20 {
            let e = estimate_phase(t, phi, &mut rng);
            sum += (e.phase - phi).abs().min(1.0 - (e.phase - phi).abs());
        }
        sum / 20.0
    }

    #[test]
    fn more_counting_qubits_tighten_estimate() {
        // Median of 5 independently seeded runs: a distribution-level bound
        // that no single unlucky seed can break, unlike the single-seed mean
        // this test previously asserted on.
        let phi = 0.7131;
        let median = |mut errs: Vec<f64>| -> f64 {
            errs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
            errs[errs.len() / 2]
        };
        let coarse = median((0..5).map(|s| mean_error(3, phi, s)).collect());
        let fine = median((0..5).map(|s| mean_error(8, phi, 100 + s)).collect());
        // 3 counting qubits resolve phi to at best |0.7131 - 0.75| ≈ 0.037,
        // so the 8-qubit estimator must come out strictly tighter.
        assert!(fine < coarse, "8-qubit median error {fine} vs 3-qubit {coarse}");
        assert!(fine < 0.01, "8-qubit median-of-means error too large: {fine}");
    }
}
