//! Grover's algorithm and its descendants — the paper's Sec. III-A.
//!
//! "To search a specific record in an unsorted database of N records,
//! classical algorithms require O(N) operations, while Grover's algorithm
//! achieves this in O(sqrt(N))." The unit of account is the *oracle query*:
//! a Grover iteration makes exactly one query (applied in superposition), a
//! classical scan makes one query per record probed. [`OracleCounter`]
//! tracks both so the E6 experiment can regenerate the complexity curves.
//!
//! Included: textbook Grover with the optimal iteration count, the
//! Boyer–Brassard–Høyer–Tapp (BBHT) loop for an unknown number of marked
//! items, and Dürr–Høyer minimum finding (the bridge from search to
//! optimization used by the Grover row of Table I \[31\]).

use qdm_sim::state::StateVector;
use rand::Rng;

/// An oracle over `n`-bit records with query accounting.
///
/// `quantum_queries` counts superposed applications (one per Grover
/// iteration); `classical_queries` counts per-record probes.
pub struct OracleCounter<F: Fn(usize) -> bool> {
    predicate: F,
    /// Oracle applications in superposition.
    pub quantum_queries: u64,
    /// Individual classical probes.
    pub classical_queries: u64,
}

impl<F: Fn(usize) -> bool> OracleCounter<F> {
    /// Wraps a predicate.
    pub fn new(predicate: F) -> Self {
        Self { predicate, quantum_queries: 0, classical_queries: 0 }
    }

    /// Applies the phase oracle to a state (counts as ONE quantum query).
    pub fn apply_phase_oracle(&mut self, state: &mut StateVector) {
        self.quantum_queries += 1;
        state.apply_phase_flip(&self.predicate);
    }

    /// Classical probe of one record.
    pub fn classical_probe(&mut self, x: usize) -> bool {
        self.classical_queries += 1;
        (self.predicate)(x)
    }

    /// Direct (uncounted) evaluation — for verification only.
    pub fn check(&self, x: usize) -> bool {
        (self.predicate)(x)
    }
}

/// The optimal Grover iteration count `floor(pi/4 * sqrt(N/M))` for `N`
/// states with `M` marked.
pub fn optimal_iterations(n_states: usize, n_marked: usize) -> usize {
    if n_marked == 0 || n_marked >= n_states {
        return 0;
    }
    let angle = ((n_marked as f64) / (n_states as f64)).sqrt().asin();
    // k maximizing sin^2((2k+1) theta): round(pi / (4 theta) - 1/2).
    ((std::f64::consts::FRAC_PI_4 / angle) - 0.5).round().max(0.0) as usize
}

/// Theoretical success probability after `k` Grover iterations with `M`
/// marked states out of `N`.
pub fn success_probability(n_states: usize, n_marked: usize, k: usize) -> f64 {
    let theta = ((n_marked as f64) / (n_states as f64)).sqrt().asin();
    ((2 * k + 1) as f64 * theta).sin().powi(2)
}

/// Runs `iterations` Grover iterations and returns the final state.
pub fn grover_state<F: Fn(usize) -> bool>(
    n_qubits: usize,
    oracle: &mut OracleCounter<F>,
    iterations: usize,
) -> StateVector {
    let mut state = StateVector::uniform(n_qubits);
    for _ in 0..iterations {
        oracle.apply_phase_oracle(&mut state);
        state.invert_about_mean();
    }
    state
}

/// Textbook Grover search with a *known* number of marked items: runs the
/// optimal number of iterations and measures once.
pub fn grover_search<F: Fn(usize) -> bool>(
    n_qubits: usize,
    n_marked: usize,
    oracle: &mut OracleCounter<F>,
    rng: &mut impl Rng,
) -> Option<usize> {
    let n = 1usize << n_qubits;
    let k = optimal_iterations(n, n_marked);
    let mut state = grover_state(n_qubits, oracle, k);
    let outcome = state.measure_all(rng);
    oracle.classical_probe(outcome); // verification probe
    if oracle.check(outcome) {
        Some(outcome)
    } else {
        None
    }
}

/// BBHT search for an *unknown* number of marked items. Returns a marked
/// item or `None` after concluding (w.h.p.) that none exists.
///
/// Boyer, Brassard, Høyer & Tapp, "Tight bounds on quantum searching"
/// (paper reference \[40\]).
pub fn bbht_search<F: Fn(usize) -> bool>(
    n_qubits: usize,
    oracle: &mut OracleCounter<F>,
    rng: &mut impl Rng,
) -> Option<usize> {
    let n = 1usize << n_qubits;
    let sqrt_n = (n as f64).sqrt();
    let lambda = 6.0 / 5.0;
    let mut m = 1.0f64;
    let mut total_iterations = 0u64;
    // After ~4.5 sqrt(N) total iterations without success, no solution w.h.p.
    let budget = (4.5 * sqrt_n).ceil() as u64 + 3;
    while total_iterations <= budget {
        let j = rng.random_range(0..(m.ceil() as usize).max(1));
        total_iterations += j as u64;
        let mut state = grover_state(n_qubits, oracle, j);
        let outcome = state.measure_all(rng);
        if oracle.classical_probe(outcome) {
            return Some(outcome);
        }
        m = (lambda * m).min(sqrt_n);
    }
    None
}

/// Result of Dürr–Høyer minimum finding.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimumResult {
    /// Index of the minimum found.
    pub index: usize,
    /// Key value at that index.
    pub key: f64,
    /// Total quantum oracle queries.
    pub quantum_queries: u64,
    /// Total classical verification probes.
    pub classical_queries: u64,
}

/// Dürr–Høyer quantum minimum finding over keys `key(x)` for
/// `x in 0..2^n`: repeated BBHT searches for "strictly better than the
/// current threshold". This is how Grover's search becomes an optimizer
/// (Groppe & Groppe \[31\] use it for transaction schedules).
pub fn durr_hoyer_minimum(
    n_qubits: usize,
    key: impl Fn(usize) -> f64,
    rng: &mut impl Rng,
) -> MinimumResult {
    let n = 1usize << n_qubits;
    let mut threshold_idx = rng.random_range(0..n);
    let mut threshold = key(threshold_idx);
    let mut quantum_queries = 0u64;
    let mut classical_queries = 1u64;
    loop {
        let t = threshold;
        let mut oracle = OracleCounter::new(|x| key(x) < t);
        match bbht_search(n_qubits, &mut oracle, rng) {
            Some(better) => {
                quantum_queries += oracle.quantum_queries;
                classical_queries += oracle.classical_queries;
                threshold_idx = better;
                threshold = key(better);
            }
            None => {
                quantum_queries += oracle.quantum_queries;
                classical_queries += oracle.classical_queries;
                break;
            }
        }
    }
    MinimumResult { index: threshold_idx, key: threshold, quantum_queries, classical_queries }
}

/// Builds the *gate-level* Grover circuit for a single marked state: the
/// Hadamard wall, then `iterations` repetitions of (oracle, diffusion),
/// where the oracle is a multi-controlled Z conjugated by X gates on the
/// target's zero bits, and the diffusion operator is `H^n X^n (MCZ) X^n
/// H^n`. This is what a gate-based machine would actually run — use it for
/// depth/gate-count accounting under the device constraints of
/// Sec. III-C.3; the state-level [`grover_state`] is the fast equivalent.
///
/// # Panics
/// Panics if `n_qubits < 2` or the target is out of range.
pub fn grover_circuit(
    n_qubits: usize,
    target: usize,
    iterations: usize,
) -> qdm_sim::circuit::Circuit {
    use qdm_sim::circuit::{Circuit, Gate};
    assert!(n_qubits >= 2, "gate-level Grover needs at least 2 qubits");
    assert!(target < (1 << n_qubits), "target out of range");
    let mut c = Circuit::new(n_qubits);
    c.h_all();
    let controls: Vec<usize> = (0..n_qubits - 1).collect();
    let anchor = n_qubits - 1;
    for _ in 0..iterations {
        // Oracle: flip the phase of |target> only.
        for q in 0..n_qubits {
            if target & (1 << q) == 0 {
                c.x(q);
            }
        }
        c.push(Gate::Mcz(controls.clone(), anchor));
        for q in 0..n_qubits {
            if target & (1 << q) == 0 {
                c.x(q);
            }
        }
        // Diffusion: 2|s><s| - I, up to global phase.
        for q in 0..n_qubits {
            c.h(q);
            c.x(q);
        }
        c.push(Gate::Mcz(controls.clone(), anchor));
        for q in 0..n_qubits {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// Classical linear scan baseline: probes records in order until the
/// predicate holds. Returns the index and the number of probes.
pub fn classical_linear_search<F: Fn(usize) -> bool>(
    n_states: usize,
    oracle: &mut OracleCounter<F>,
) -> Option<usize> {
    (0..n_states).find(|&x| oracle.classical_probe(x))
}

/// Classical randomized search baseline (sampling with replacement).
pub fn classical_random_search<F: Fn(usize) -> bool>(
    n_states: usize,
    oracle: &mut OracleCounter<F>,
    max_probes: u64,
    rng: &mut impl Rng,
) -> Option<usize> {
    for _ in 0..max_probes {
        let x = rng.random_range(0..n_states);
        if oracle.classical_probe(x) {
            return Some(x);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimal_iteration_counts_match_theory() {
        assert_eq!(optimal_iterations(4, 1), 1); // exact on 2 qubits
        assert_eq!(optimal_iterations(1024, 1), 25); // ~ pi/4 * 32
        assert_eq!(optimal_iterations(16, 4), 1);
        assert_eq!(optimal_iterations(8, 0), 0);
    }

    #[test]
    fn success_probability_peaks_at_optimum() {
        let n = 256;
        let k_opt = optimal_iterations(n, 1);
        let p_opt = success_probability(n, 1, k_opt);
        assert!(p_opt > 0.99, "p at optimum {p_opt}");
        assert!(success_probability(n, 1, 0) < 0.01);
        // Overshooting reduces success probability.
        assert!(success_probability(n, 1, 2 * k_opt) < p_opt);
    }

    #[test]
    fn grover_amplifies_marked_state() {
        let target = 0b101101;
        let mut oracle = OracleCounter::new(move |x| x == target);
        let state = grover_state(6, &mut oracle, optimal_iterations(64, 1));
        assert!(state.probability(target) > 0.99);
        assert_eq!(oracle.quantum_queries, optimal_iterations(64, 1) as u64);
    }

    #[test]
    fn grover_search_finds_target_with_quadratic_queries() {
        let mut rng = StdRng::seed_from_u64(17);
        let target = 42;
        let mut oracle = OracleCounter::new(move |x| x == target);
        let found = grover_search(8, 1, &mut oracle, &mut rng);
        assert_eq!(found, Some(target));
        // sqrt(256) * pi/4 ~ 12 iterations, far fewer than 256 classical.
        assert!(oracle.quantum_queries <= 13);
        let mut coracle = OracleCounter::new(move |x| x == target);
        assert_eq!(classical_linear_search(256, &mut coracle), Some(target));
        assert_eq!(coracle.classical_queries, 43);
    }

    #[test]
    fn bbht_finds_solution_with_unknown_m() {
        let mut rng = StdRng::seed_from_u64(5);
        // 3 marked items out of 128, count unknown to the caller.
        let mut oracle = OracleCounter::new(|x| x == 7 || x == 99 || x == 111);
        let found = bbht_search(7, &mut oracle, &mut rng).expect("should find one");
        assert!(oracle.check(found));
    }

    #[test]
    fn bbht_returns_none_when_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut oracle = OracleCounter::new(|_| false);
        assert_eq!(bbht_search(5, &mut oracle, &mut rng), None);
    }

    #[test]
    fn durr_hoyer_finds_minimum() {
        let mut rng = StdRng::seed_from_u64(9);
        // Key function with a unique minimum at 37.
        let key = |x: usize| ((x as f64) - 37.0).abs() + 1.0;
        let res = durr_hoyer_minimum(6, key, &mut rng);
        assert_eq!(res.index, 37);
        assert!((res.key - 1.0).abs() < 1e-12);
        assert!(res.quantum_queries > 0);
    }

    #[test]
    fn gate_level_grover_matches_state_level() {
        let target = 0b1011;
        let k = optimal_iterations(16, 1);
        let circuit = grover_circuit(4, target, k);
        let circuit_state = circuit.run();
        let mut oracle = OracleCounter::new(move |x| x == target);
        let fast_state = grover_state(4, &mut oracle, k);
        // Same probabilities (the diffusion differs by a global phase only).
        for i in 0..16 {
            assert!(
                (circuit_state.probability(i) - fast_state.probability(i)).abs() < 1e-9,
                "index {i}"
            );
        }
        assert!(circuit_state.probability(target) > 0.9);
    }

    #[test]
    fn gate_level_grover_costs_scale_with_iterations() {
        let c1 = grover_circuit(5, 3, 1);
        let c2 = grover_circuit(5, 3, 2);
        assert!(c2.gate_count() > c1.gate_count());
        assert!(c2.depth() > c1.depth());
        assert_eq!(c1.multi_qubit_gate_count(), 2); // one MCZ per oracle + diffusion
    }

    #[test]
    fn classical_random_search_eventually_hits() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut oracle = OracleCounter::new(|x| x == 3);
        let found = classical_random_search(16, &mut oracle, 1000, &mut rng);
        assert_eq!(found, Some(3));
    }
}
