//! Gate-simulated adiabatic evolution — what a quantum annealer
//! *physically does*, reproduced on the gate-model simulator.
//!
//! The annealer interpolates `H(s) = (1-s) * (-sum_i X_i) + s * H_problem`
//! from the transverse field's easy ground state `|+...+>` to the Ising
//! cost Hamiltonian. We Trotterize the schedule into alternating
//! `exp(-i dt (1-s) sum X)` and `exp(-i dt s H_problem)` steps; by the
//! adiabatic theorem, a slow enough schedule lands in the problem's ground
//! state. This closes the loop between the paper's two hardware families:
//! the same QUBO solved by `qdm-anneal`'s Monte-Carlo annealer is solved
//! here by unitary evolution.

use crate::qaoa::EnergyTable;
use qdm_qubo::model::{bits_from_index, QuboModel};
use qdm_qubo::solve::SolveResult;
use qdm_sim::gates;
use qdm_sim::state::StateVector;
use rand::Rng;
use std::time::Instant;

/// Parameters for [`adiabatic_evolve`].
#[derive(Debug, Clone, Copy)]
pub struct AdiabaticParams {
    /// Trotter steps along the schedule.
    pub steps: usize,
    /// Total evolution time `T` (larger = more adiabatic).
    pub total_time: f64,
    /// Measurement shots for the readout.
    pub shots: usize,
}

impl Default for AdiabaticParams {
    fn default() -> Self {
        Self { steps: 120, total_time: 24.0, shots: 128 }
    }
}

/// Outcome of an adiabatic evolution.
#[derive(Debug, Clone)]
pub struct AdiabaticResult {
    /// Best sampled assignment.
    pub solve: SolveResult,
    /// Probability mass on the exact ground state in the final state.
    pub ground_state_probability: f64,
    /// Final-state energy expectation.
    pub expectation: f64,
}

/// Runs Trotterized adiabatic evolution on a QUBO and samples the final
/// state.
///
/// # Panics
/// Panics if the model exceeds 20 variables (dense-simulation budget).
pub fn adiabatic_evolve(
    q: &QuboModel,
    params: &AdiabaticParams,
    rng: &mut impl Rng,
) -> AdiabaticResult {
    let start = Instant::now();
    let n = q.n_vars();
    assert!(n <= 20, "adiabatic simulation caps at 20 variables");
    let table = EnergyTable::new(q);
    // Normalize the problem Hamiltonian so schedules transfer across
    // problem scales.
    let scale = q.max_abs_coefficient().max(1e-12);

    // Start in |+...+>, the ground state of -sum X.
    let mut state = StateVector::uniform(n);
    let steps = params.steps.max(1);
    let dt = params.total_time / steps as f64;
    for k in 0..steps {
        let s = (k as f64 + 0.5) / steps as f64;
        // Problem layer: diagonal phase exp(-i dt s H_p / scale).
        let w = dt * s / scale;
        state.apply_diagonal_phase(|z| -w * table.energies[z]);
        // Driver layer: exp(+i dt (1-s) sum X) == RX(-2 dt (1-s)) per qubit.
        let rx = gates::rx(-2.0 * dt * (1.0 - s));
        for qubit in 0..n {
            state.apply_single(qubit, &rx);
        }
    }

    let (ground_idx, _) = table.minimum();
    let ground_state_probability = state.probability(ground_idx);
    let expectation = state.expectation_diagonal(|z| table.energies[z]);
    // Sample the best assignment.
    let mut best_idx = state.sample_one(rng);
    for _ in 1..params.shots.max(1) {
        let z = state.sample_one(rng);
        if table.energies[z] < table.energies[best_idx] {
            best_idx = z;
        }
    }
    AdiabaticResult {
        solve: SolveResult {
            bits: bits_from_index(best_idx, n),
            energy: table.energies[best_idx],
            evaluations: steps as u64,
            seconds: start.elapsed().as_secs_f64(),
            certified_optimal: false,
        },
        ground_state_probability,
        expectation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn model(seed: u64, n: usize) -> QuboModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = QuboModel::new(n);
        for i in 0..n {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in (i + 1)..n {
                if rng.random::<f64>() < 0.5 {
                    q.add_quadratic(i, j, rng.random_range(-1.5..1.5));
                }
            }
        }
        q
    }

    #[test]
    fn slow_evolution_concentrates_on_ground_state() {
        let q = model(1, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let res = adiabatic_evolve(
            &q,
            &AdiabaticParams { steps: 250, total_time: 60.0, shots: 64 },
            &mut rng,
        );
        assert!(
            res.ground_state_probability > 0.3,
            "ground-state probability {}",
            res.ground_state_probability
        );
        let exact = solve_exact(&q);
        assert!(
            (res.solve.energy - exact.energy).abs() < 1e-9,
            "sampled {} vs exact {}",
            res.solve.energy,
            exact.energy
        );
    }

    #[test]
    fn slower_schedules_are_more_adiabatic() {
        let q = model(3, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let fast = adiabatic_evolve(
            &q,
            &AdiabaticParams { steps: 30, total_time: 1.5, shots: 8 },
            &mut rng,
        );
        let slow = adiabatic_evolve(
            &q,
            &AdiabaticParams { steps: 300, total_time: 80.0, shots: 8 },
            &mut rng,
        );
        assert!(
            slow.ground_state_probability > fast.ground_state_probability,
            "slow {} vs fast {}",
            slow.ground_state_probability,
            fast.ground_state_probability
        );
    }

    #[test]
    fn reported_energy_matches_bits() {
        let q = model(5, 6);
        let mut rng = StdRng::seed_from_u64(6);
        let res = adiabatic_evolve(&q, &AdiabaticParams::default(), &mut rng);
        assert!((q.energy(&res.solve.bits) - res.solve.energy).abs() < 1e-9);
    }
}
