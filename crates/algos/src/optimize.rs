//! Classical parameter optimizers for variational quantum algorithms.
//!
//! QAOA, VQE and VQC are *hybrid* algorithms (Sec. III-C.2): a classical
//! outer loop tunes circuit parameters against a quantum-evaluated
//! objective. We provide derivative-free Nelder–Mead, the SPSA stochastic
//! optimizer commonly used on noisy hardware, and a coarse grid search for
//! low-dimensional landscapes.

use rand::Rng;

/// Result of a classical optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimResult {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at `params`.
    pub value: f64,
    /// Number of objective evaluations.
    pub evaluations: u64,
}

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: u64,
    /// Convergence tolerance on the simplex value spread.
    pub tolerance: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        Self { max_evals: 2000, tolerance: 1e-8, initial_step: 0.5 }
    }
}

/// Derivative-free Nelder–Mead simplex minimization.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> OptimResult {
    let n = x0.len();
    assert!(n >= 1, "need at least one parameter");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut evals: u64 = 0;
    let mut eval = |x: &[f64], evals: &mut u64| -> f64 {
        *evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += opts.initial_step;
        let v = eval(&x, &mut evals);
        simplex.push((x, v));
    }

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < opts.tolerance {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> =
            centroid.iter().zip(&worst.0).map(|(c, w)| c + alpha * (c - w)).collect();
        let fr = eval(&reflect, &mut evals);
        if fr < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> =
                centroid.iter().zip(&reflect).map(|(c, r)| c + gamma * (r - c)).collect();
            let fe = eval(&expand, &mut evals);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> =
                centroid.iter().zip(&worst.0).map(|(c, w)| c + rho * (w - c)).collect();
            let fc = eval(&contract, &mut evals);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink towards the best.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> =
                        best.iter().zip(&entry.0).map(|(b, xi)| b + sigma * (xi - b)).collect();
                    let v = eval(&x, &mut evals);
                    *entry = (x, v);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (params, value) = simplex.swap_remove(0);
    OptimResult { params, value, evaluations: evals }
}

/// Options for [`spsa`].
#[derive(Debug, Clone, Copy)]
pub struct SpsaOptions {
    /// Iterations.
    pub iterations: usize,
    /// Initial step size `a`.
    pub a: f64,
    /// Initial perturbation size `c`.
    pub c: f64,
}

impl Default for SpsaOptions {
    fn default() -> Self {
        Self { iterations: 300, a: 0.2, c: 0.2 }
    }
}

/// Simultaneous perturbation stochastic approximation: two objective
/// evaluations per iteration regardless of dimension, robust to shot noise.
pub fn spsa(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &SpsaOptions,
    rng: &mut impl Rng,
) -> OptimResult {
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut best = x.clone();
    let mut best_val = f(&x);
    let mut evals: u64 = 1;
    let (big_a, alpha, gamma) = (0.1 * opts.iterations as f64, 0.602, 0.101);
    let mut plus = vec![0.0; n];
    let mut minus = vec![0.0; n];
    for k in 0..opts.iterations {
        let ak = opts.a / (k as f64 + 1.0 + big_a).powf(alpha);
        let ck = opts.c / (k as f64 + 1.0).powf(gamma);
        // Rademacher perturbation.
        let delta: Vec<f64> =
            (0..n).map(|_| if rng.random::<bool>() { 1.0 } else { -1.0 }).collect();
        for i in 0..n {
            plus[i] = x[i] + ck * delta[i];
            minus[i] = x[i] - ck * delta[i];
        }
        let fp = f(&plus);
        let fm = f(&minus);
        evals += 2;
        for i in 0..n {
            let g = (fp - fm) / (2.0 * ck * delta[i]);
            x[i] -= ak * g;
        }
        let fx = f(&x);
        evals += 1;
        if fx < best_val {
            best_val = fx;
            best.copy_from_slice(&x);
        }
    }
    OptimResult { params: best, value: best_val, evaluations: evals }
}

/// Dense grid search over a 2-D box; returns the best grid point. Useful
/// for the `p = 1` QAOA landscape where (gamma, beta) is 2-dimensional.
pub fn grid_search_2d(
    mut f: impl FnMut(f64, f64) -> f64,
    x_range: (f64, f64),
    y_range: (f64, f64),
    resolution: usize,
) -> OptimResult {
    assert!(resolution >= 2);
    let mut best = (x_range.0, y_range.0, f64::INFINITY);
    let mut evals = 0u64;
    for i in 0..resolution {
        let x = x_range.0 + (x_range.1 - x_range.0) * i as f64 / (resolution - 1) as f64;
        for j in 0..resolution {
            let y = y_range.0 + (y_range.1 - y_range.0) * j as f64 / (resolution - 1) as f64;
            let v = f(x, y);
            evals += 1;
            if v < best.2 {
                best = (x, y, v);
            }
        }
    }
    OptimResult { params: vec![best.0, best.1], value: best.2, evaluations: evals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rosenbrock(x: &[f64]) -> f64 {
        (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let res = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            &NelderMeadOptions::default(),
        );
        assert!((res.params[0] - 3.0).abs() < 1e-3, "{:?}", res.params);
        assert!((res.params[1] + 1.0).abs() < 1e-3);
        assert!(res.value < 1e-6);
    }

    #[test]
    fn nelder_mead_handles_rosenbrock() {
        let res = nelder_mead(
            rosenbrock,
            &[-1.0, 1.0],
            &NelderMeadOptions { max_evals: 5000, ..Default::default() },
        );
        assert!(res.value < 1e-4, "value {}", res.value);
    }

    #[test]
    fn spsa_descends_smooth_quadratic() {
        let mut rng = StdRng::seed_from_u64(4);
        let res = spsa(
            |x| x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum(),
            &[3.0, -2.0, 0.5],
            &SpsaOptions { iterations: 800, ..Default::default() },
            &mut rng,
        );
        assert!(res.value < 0.05, "value {}", res.value);
    }

    #[test]
    fn grid_search_finds_cell() {
        let res = grid_search_2d(
            |x, y| (x - 0.4).powi(2) + (y - 0.6).powi(2),
            (0.0, 1.0),
            (0.0, 1.0),
            21,
        );
        assert!((res.params[0] - 0.4).abs() < 0.051);
        assert!((res.params[1] - 0.6).abs() < 0.051);
        assert_eq!(res.evaluations, 441);
    }
}
