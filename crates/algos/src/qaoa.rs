//! The Quantum Approximate Optimization Algorithm (QAOA).
//!
//! The gate-model workhorse of Table I: MQO \[21\], \[22\], join ordering
//! \[23\]–\[26\] and schema matching \[28\] all run QAOA over their QUBO
//! encodings. The circuit alternates `p` layers of the diagonal cost
//! unitary `e^{-i gamma H_C}` and the transverse mixer `e^{-i beta sum X}`;
//! a classical optimizer tunes the `2p` angles (the hybrid loop of
//! Sec. III-C.2).
//!
//! The cost layer is applied as an exact diagonal phase (the simulator can
//! do this in `O(2^n)` without gate decomposition); gate counts for a real
//! device are still reported via [`qaoa_gate_cost`] using the standard
//! RZZ/RZ/RX decomposition.

use crate::optimize::{nelder_mead, NelderMeadOptions};
use qdm_qubo::model::{bits_from_index, QuboModel};
use qdm_qubo::solve::SolveResult;
use qdm_sim::gates;
use qdm_sim::state::StateVector;
use rand::Rng;
use std::time::Instant;

/// Precomputed diagonal energy table of a QUBO over all `2^n` basis states.
#[derive(Debug, Clone)]
pub struct EnergyTable {
    /// `energies[z]` = QUBO energy of assignment `z` (bit i = variable i).
    pub energies: Vec<f64>,
    n_vars: usize,
}

impl EnergyTable {
    /// Builds the table; `O(2^n)` using Gray-code incremental updates.
    ///
    /// # Panics
    /// Panics if the model has more than 24 variables.
    pub fn new(q: &QuboModel) -> Self {
        let n = q.n_vars();
        assert!(n <= 24, "energy table caps at 24 variables");
        let total = 1usize << n;
        let adj = q.neighbor_lists();
        let mut energies = vec![0.0f64; total];
        let mut x = vec![false; n];
        let mut energy = q.energy(&x);
        energies[0] = energy;
        let mut gray_prev = 0usize;
        for k in 1..total {
            let gray = k ^ (k >> 1);
            let flipped = (gray ^ gray_prev).trailing_zeros() as usize;
            gray_prev = gray;
            let mut local = q.linear(flipped);
            for &(nb, w) in &adj[flipped] {
                if x[nb] {
                    local += w;
                }
            }
            energy += if x[flipped] { -local } else { local };
            x[flipped] = !x[flipped];
            energies[gray] = energy;
        }
        Self { energies, n_vars: n }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The index and value of the global minimum.
    pub fn minimum(&self) -> (usize, f64) {
        self.energies.iter().enumerate().fold((0, f64::INFINITY), |acc, (i, &e)| {
            if e < acc.1 {
                (i, e)
            } else {
                acc
            }
        })
    }

    /// The maximum energy (for approximation-ratio normalization).
    pub fn maximum(&self) -> f64 {
        self.energies.iter().fold(f64::NEG_INFINITY, |m, &e| m.max(e))
    }
}

/// QAOA hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct QaoaParams {
    /// Circuit depth `p` (number of cost+mixer layer pairs).
    pub depth: usize,
    /// Measurement shots drawn from the final state.
    pub shots: usize,
    /// Maximum classical-optimizer objective evaluations.
    pub max_evals: u64,
    /// Random multi-starts for the angle optimization.
    pub starts: usize,
}

impl Default for QaoaParams {
    fn default() -> Self {
        Self { depth: 2, shots: 256, max_evals: 400, starts: 3 }
    }
}

/// Outcome of a QAOA run.
#[derive(Debug, Clone)]
pub struct QaoaResult {
    /// Best sampled assignment.
    pub solve: SolveResult,
    /// Optimized angles `(gamma_1..p, beta_1..p)`.
    pub angles: Vec<f64>,
    /// Final-state expectation `<H_C>`.
    pub expectation: f64,
    /// Approximation ratio `(E_max - <H>) / (E_max - E_min)`; 1 is optimal.
    pub approx_ratio: f64,
    /// Probability mass on the exact optimum in the final state.
    pub optimum_probability: f64,
}

/// Prepares the QAOA state for the given angles over a precomputed energy
/// table (first half of `angles` = gammas, second half = betas).
pub fn qaoa_state(table: &EnergyTable, angles: &[f64]) -> StateVector {
    assert!(angles.len().is_multiple_of(2), "angles = gammas then betas");
    let p = angles.len() / 2;
    let n = table.n_vars;
    let mut state = StateVector::uniform(n);
    for layer in 0..p {
        let gamma = angles[layer];
        let beta = angles[p + layer];
        state.apply_diagonal_phase(|z| -gamma * table.energies[z]);
        let rx = gates::rx(2.0 * beta);
        for q in 0..n {
            state.apply_single(q, &rx);
        }
    }
    state
}

/// Expectation `<H_C>` of the QAOA state at the given angles.
pub fn qaoa_expectation(table: &EnergyTable, angles: &[f64]) -> f64 {
    let state = qaoa_state(table, angles);
    state.expectation_diagonal(|z| table.energies[z])
}

/// Full QAOA pipeline: optimize angles (multi-start Nelder–Mead), sample
/// the final state, return the best sampled assignment.
pub fn qaoa_optimize(q: &QuboModel, params: &QaoaParams, rng: &mut impl Rng) -> QaoaResult {
    let start = Instant::now();
    let table = EnergyTable::new(q);
    let n = q.n_vars();
    let p = params.depth.max(1);
    let mut evals = 0u64;

    let mut best_angles = vec![0.0; 2 * p];
    let mut best_exp = f64::INFINITY;
    for s in 0..params.starts.max(1) {
        let x0: Vec<f64> = (0..2 * p)
            .map(|i| {
                let span = if i < p { 1.0 } else { std::f64::consts::FRAC_PI_2 };
                if s == 0 {
                    // Deterministic linear-ramp start (a strong heuristic).
                    let layer = (i % p) as f64 + 1.0;
                    0.4 * span * layer / p as f64
                } else {
                    rng.random_range(0.0..span)
                }
            })
            .collect();
        let res = nelder_mead(
            |a| qaoa_expectation(&table, a),
            &x0,
            &NelderMeadOptions {
                max_evals: params.max_evals / params.starts.max(1) as u64,
                ..Default::default()
            },
        );
        evals += res.evaluations;
        if res.value < best_exp {
            best_exp = res.value;
            best_angles = res.params;
        }
    }

    let final_state = qaoa_state(&table, &best_angles);
    let (opt_idx, e_min) = table.minimum();
    let e_max = table.maximum();

    // Sample and keep the best assignment.
    let mut best_idx = final_state.sample_one(rng);
    for _ in 1..params.shots.max(1) {
        let z = final_state.sample_one(rng);
        if table.energies[z] < table.energies[best_idx] {
            best_idx = z;
        }
    }
    let expectation = final_state.expectation_diagonal(|z| table.energies[z]);
    let denom = (e_max - e_min).max(f64::MIN_POSITIVE);
    QaoaResult {
        solve: SolveResult {
            bits: bits_from_index(best_idx, n),
            energy: table.energies[best_idx],
            evaluations: evals,
            seconds: start.elapsed().as_secs_f64(),
            certified_optimal: false,
        },
        angles: best_angles,
        expectation,
        approx_ratio: (e_max - expectation) / denom,
        optimum_probability: final_state.probability(opt_idx),
    }
}

/// Builds the explicit gate-level QAOA circuit (Hadamard wall, then per
/// layer: one RZZ per coupling + one RZ per linear term + one RX per
/// qubit). Equivalent to [`qaoa_state`] up to global phase; use it for
/// noisy execution and device accounting.
pub fn qaoa_circuit(q: &QuboModel, angles: &[f64]) -> qdm_sim::circuit::Circuit {
    use qdm_sim::circuit::Circuit;
    assert!(angles.len().is_multiple_of(2), "angles = gammas then betas");
    let p = angles.len() / 2;
    let n = q.n_vars();
    let mut c = Circuit::new(n);
    c.h_all();
    for layer in 0..p {
        let gamma = angles[layer];
        let beta = angles[p + layer];
        // x_i x_j = (1 - s_i - s_j + s_i s_j)/4: coupling w contributes
        // RZZ(w gamma / 2) plus RZ(-w gamma / 2) on each endpoint.
        for ((i, j), w) in q.quadratic_iter() {
            c.rzz(i, j, 0.5 * w * gamma);
            c.rz(i, -0.5 * w * gamma);
            c.rz(j, -0.5 * w * gamma);
        }
        // x_i = (1 - s_i)/2: linear a contributes RZ(-a gamma).
        for i in 0..n {
            let a = q.linear(i);
            if a != 0.0 {
                c.rz(i, -a * gamma);
            }
        }
        for qubit in 0..n {
            c.rx(qubit, 2.0 * beta);
        }
    }
    c
}

/// Expected cost `<H_C>` of one *noisy* QAOA execution: runs the explicit
/// gate circuit under the device noise model for `trajectories`
/// Monte-Carlo runs and averages the energy expectation — the Sec. III-C.3
/// question "what does hardware noise do to solution quality" made
/// measurable.
pub fn qaoa_noisy_expectation(
    q: &QuboModel,
    angles: &[f64],
    model: &qdm_sim::noise::NoiseModel,
    trajectories: usize,
    rng: &mut impl Rng,
) -> f64 {
    let table = EnergyTable::new(q);
    let circuit = qaoa_circuit(q, angles);
    let mut total = 0.0;
    for _ in 0..trajectories.max(1) {
        let state = qdm_sim::noise::run_noisy(&circuit, model, rng);
        total += state.expectation_diagonal(|z| table.energies[z]);
    }
    total / trajectories.max(1) as f64
}

/// Gate-cost estimate of one QAOA execution on hardware using the standard
/// decomposition: one RZZ (= 2 CNOT + 1 RZ) per quadratic coupling and one
/// RZ per linear term per layer, plus one RX per qubit per layer and the
/// initial Hadamard wall. Returns `(total_gates, two_qubit_gates)`.
pub fn qaoa_gate_cost(q: &QuboModel, depth: usize) -> (usize, usize) {
    let n = q.n_vars();
    let couplings = q.n_interactions();
    let linear_terms = (0..n).filter(|&i| q.linear(i) != 0.0).count();
    let per_layer_two_qubit = 2 * couplings;
    let per_layer_total = 3 * couplings + linear_terms + n;
    (n + depth * per_layer_total, depth * per_layer_two_qubit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_model() -> QuboModel {
        let mut q = QuboModel::new(4);
        q.add_linear(0, 1.0)
            .add_linear(1, -1.0)
            .add_quadratic(0, 1, 2.0)
            .add_quadratic(1, 2, -1.5)
            .add_quadratic(2, 3, 1.0)
            .add_offset(0.25);
        q
    }

    #[test]
    fn energy_table_matches_direct_evaluation() {
        let q = small_model();
        let table = EnergyTable::new(&q);
        for z in 0..16 {
            let bits = bits_from_index(z, 4);
            assert!((table.energies[z] - q.energy(&bits)).abs() < 1e-12, "z={z}");
        }
        let (idx, e) = table.minimum();
        let exact = solve_exact(&q);
        assert!((e - exact.energy).abs() < 1e-12);
        assert_eq!(bits_from_index(idx, 4), exact.bits);
    }

    #[test]
    fn zero_angles_leave_uniform_state() {
        let q = small_model();
        let table = EnergyTable::new(&q);
        let s = qaoa_state(&table, &[0.0, 0.0]);
        for z in 0..16 {
            assert!((s.probability(z) - 1.0 / 16.0).abs() < 1e-12);
        }
        // Expectation at zero angles = mean energy.
        let mean: f64 = table.energies.iter().sum::<f64>() / 16.0;
        assert!((qaoa_expectation(&table, &[0.0, 0.0]) - mean).abs() < 1e-12);
    }

    #[test]
    fn qaoa_beats_random_guessing() {
        let q = small_model();
        let mut rng = StdRng::seed_from_u64(3);
        let res = qaoa_optimize(&q, &QaoaParams::default(), &mut rng);
        let table = EnergyTable::new(&q);
        let mean: f64 = table.energies.iter().sum::<f64>() / 16.0;
        assert!(
            res.expectation < mean,
            "QAOA expectation {} not below uniform mean {mean}",
            res.expectation
        );
        assert!(res.approx_ratio > 0.5);
        // Sampled solution should be optimal on such a tiny model.
        let exact = solve_exact(&q);
        assert!((res.solve.energy - exact.energy).abs() < 1e-9);
    }

    #[test]
    fn deeper_qaoa_does_not_regress() {
        let q = small_model();
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let shallow = qaoa_optimize(
            &q,
            &QaoaParams { depth: 1, max_evals: 300, ..Default::default() },
            &mut r1,
        );
        let deep = qaoa_optimize(
            &q,
            &QaoaParams { depth: 4, max_evals: 1200, ..Default::default() },
            &mut r2,
        );
        assert!(deep.expectation <= shallow.expectation + 0.05);
    }

    #[test]
    fn gate_circuit_matches_diagonal_fast_path() {
        let q = small_model();
        let table = EnergyTable::new(&q);
        let angles = [0.37, -0.52, 0.61, 0.18]; // p = 2
        let fast = qaoa_state(&table, &angles);
        let circuit_state = qaoa_circuit(&q, &angles).run();
        // Same measurement distribution (global phase cancels).
        for z in 0..16 {
            assert!((fast.probability(z) - circuit_state.probability(z)).abs() < 1e-9, "z = {z}");
        }
    }

    #[test]
    fn noise_degrades_qaoa_quality() {
        use qdm_sim::noise::NoiseModel;
        let q = small_model();
        let table = EnergyTable::new(&q);
        // Optimize angles noiselessly first.
        let mut rng = StdRng::seed_from_u64(21);
        let res = qaoa_optimize(&q, &QaoaParams { depth: 2, ..Default::default() }, &mut rng);
        let clean = qaoa_expectation(&table, &res.angles);
        let noisy = qaoa_noisy_expectation(
            &q,
            &res.angles,
            &NoiseModel::depolarizing(0.01, 0.05),
            40,
            &mut rng,
        );
        // Depolarizing noise pushes the expectation towards the uniform mean.
        let mean: f64 = table.energies.iter().sum::<f64>() / 16.0;
        assert!(noisy > clean - 1e-9, "noisy {noisy} vs clean {clean}");
        assert!(noisy < mean + 0.3, "noisy {noisy} should stay below mean {mean}");
    }

    #[test]
    fn gate_cost_scales_with_depth_and_couplings() {
        let q = small_model();
        let (g1, t1) = qaoa_gate_cost(&q, 1);
        let (g2, t2) = qaoa_gate_cost(&q, 2);
        assert!(g2 > g1);
        assert_eq!(t1, 2 * 3); // 3 couplings
        assert_eq!(t2, 2 * t1);
    }
}
