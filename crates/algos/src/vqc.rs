//! Variational quantum circuits (VQC) for machine learning — the algorithm
//! behind the learned join-ordering row of Table I (Winker et al. \[27\]).
//!
//! A [`Vqc`] is a parameterized circuit: angle-encoded inputs, trainable
//! RY/RZ layers with CZ entanglement, and a Pauli-Z readout in `[-1, 1]`.
//! Training uses the *parameter-shift rule* — the exact gradient identity
//! for rotation gates — with plain gradient descent, exactly the hybrid
//! loop VQC-based quantum ML runs on hardware.

use qdm_sim::circuit::Circuit;
use qdm_sim::state::StateVector;
use rand::Rng;

/// A variational quantum circuit model.
#[derive(Debug, Clone)]
pub struct Vqc {
    n_qubits: usize,
    layers: usize,
    /// Trainable angles, layout `[layer][qubit][rot in {ry, rz}]` flattened.
    pub params: Vec<f64>,
    /// Qubit whose Z expectation is the scalar output.
    readout: usize,
}

impl Vqc {
    /// Creates a VQC with small random initial parameters.
    pub fn new(n_qubits: usize, layers: usize, rng: &mut impl Rng) -> Self {
        assert!(n_qubits >= 1 && layers >= 1);
        let params =
            (0..Self::param_count(n_qubits, layers)).map(|_| rng.random_range(-0.1..0.1)).collect();
        Self { n_qubits, layers, params, readout: 0 }
    }

    /// Number of trainable parameters for the given shape.
    pub fn param_count(n_qubits: usize, layers: usize) -> usize {
        2 * n_qubits * layers
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Builds the circuit for input features `x` (one feature per qubit,
    /// angle-encoded as `RY(pi * x_i)`); features beyond the register width
    /// are ignored, missing features default to zero.
    pub fn circuit(&self, x: &[f64]) -> Circuit {
        self.circuit_with(&self.params, x)
    }

    fn circuit_with(&self, params: &[f64], x: &[f64]) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for q in 0..self.n_qubits {
            let feature = x.get(q).copied().unwrap_or(0.0);
            c.ry(q, std::f64::consts::PI * feature);
        }
        let mut p = 0;
        for _ in 0..self.layers {
            for q in 0..self.n_qubits {
                c.ry(q, params[p]);
                c.rz(q, params[p + 1]);
                p += 2;
            }
            for q in 0..self.n_qubits.saturating_sub(1) {
                c.cz(q, q + 1);
            }
        }
        c
    }

    /// Forward pass: `<Z_readout>` of the output state, in `[-1, 1]`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.predict_with(&self.params, x)
    }

    /// Forward pass reading `<Z_q>` on an arbitrary qubit `q` — used when
    /// one circuit encodes a vector-valued function (e.g. one Q-value per
    /// action in reinforcement learning).
    pub fn predict_readout(&self, x: &[f64], q: usize) -> f64 {
        let mut state = StateVector::new(self.n_qubits);
        self.circuit_with(&self.params, x).apply_to(&mut state);
        state.expectation_z(q)
    }

    /// Parameter-shift gradient of `<Z_q>` for readout qubit `q`.
    pub fn gradient_readout(&self, x: &[f64], q: usize) -> Vec<f64> {
        let mut grad = vec![0.0; self.params.len()];
        let mut shifted = self.params.clone();
        for k in 0..self.params.len() {
            let orig = shifted[k];
            shifted[k] = orig + std::f64::consts::FRAC_PI_2;
            let plus = self.predict_with_readout(&shifted, x, q);
            shifted[k] = orig - std::f64::consts::FRAC_PI_2;
            let minus = self.predict_with_readout(&shifted, x, q);
            shifted[k] = orig;
            grad[k] = (plus - minus) / 2.0;
        }
        grad
    }

    fn predict_with(&self, params: &[f64], x: &[f64]) -> f64 {
        self.predict_with_readout(params, x, self.readout)
    }

    fn predict_with_readout(&self, params: &[f64], x: &[f64], q: usize) -> f64 {
        let mut state = StateVector::new(self.n_qubits);
        self.circuit_with(params, x).apply_to(&mut state);
        state.expectation_z(q)
    }

    /// Exact gradient of the output w.r.t. every parameter via the
    /// parameter-shift rule: `dE/dtheta = (E(theta + pi/2) - E(theta - pi/2)) / 2`.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut grad = vec![0.0; self.params.len()];
        let mut shifted = self.params.clone();
        for k in 0..self.params.len() {
            let orig = shifted[k];
            shifted[k] = orig + std::f64::consts::FRAC_PI_2;
            let plus = self.predict_with(&shifted, x);
            shifted[k] = orig - std::f64::consts::FRAC_PI_2;
            let minus = self.predict_with(&shifted, x);
            shifted[k] = orig;
            grad[k] = (plus - minus) / 2.0;
        }
        grad
    }

    /// One gradient-descent step on the squared error `(predict(x) - y)^2`.
    /// Returns the loss before the step.
    pub fn train_step(&mut self, x: &[f64], y: f64, lr: f64) -> f64 {
        let out = self.predict(x);
        let err = out - y;
        let grad = self.gradient(x);
        for (p, g) in self.params.iter_mut().zip(&grad) {
            *p -= lr * 2.0 * err * g;
        }
        err * err
    }

    /// Trains on a dataset for `epochs` passes; returns the per-epoch mean
    /// squared error trace.
    pub fn train(&mut self, data: &[(Vec<f64>, f64)], epochs: usize, lr: f64) -> Vec<f64> {
        let mut trace = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut loss = 0.0;
            for (x, y) in data {
                loss += self.train_step(x, *y, lr);
            }
            trace.push(loss / data.len().max(1) as f64);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prediction_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = Vqc::new(3, 2, &mut rng);
        for x in [[0.0, 0.0, 0.0], [1.0, 0.5, -0.3], [0.9, 0.9, 0.9]] {
            let y = v.predict(&x);
            assert!((-1.0..=1.0).contains(&y), "prediction {y}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn parameter_shift_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = Vqc::new(2, 2, &mut rng);
        let x = [0.3, 0.7];
        let analytic = v.gradient(&x);
        let eps = 1e-6;
        for k in 0..v.params.len() {
            let mut vp = v.clone();
            vp.params[k] += eps;
            let mut vm = v.clone();
            vm.params[k] -= eps;
            let numeric = (vp.predict(&x) - vm.predict(&x)) / (2.0 * eps);
            assert!(
                (analytic[k] - numeric).abs() < 1e-5,
                "param {k}: analytic {} vs numeric {numeric}",
                analytic[k]
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_simple_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = Vqc::new(2, 2, &mut rng);
        // Learn y = 0.5 * (x0 - x1): representable within [-1, 1].
        let data: Vec<(Vec<f64>, f64)> = vec![
            (vec![0.0, 0.0], 0.0),
            (vec![1.0, 0.0], 0.5),
            (vec![0.0, 1.0], -0.5),
            (vec![0.5, 0.5], 0.0),
        ];
        let trace = v.train(&data, 60, 0.2);
        assert!(
            trace.last().copied().unwrap_or(1.0) < trace[0] * 0.5,
            "loss did not halve: {:?} -> {:?}",
            trace.first(),
            trace.last()
        );
    }

    #[test]
    fn param_count_formula() {
        assert_eq!(Vqc::param_count(4, 3), 24);
        let mut rng = StdRng::seed_from_u64(4);
        let v = Vqc::new(4, 3, &mut rng);
        assert_eq!(v.params.len(), 24);
    }
}
