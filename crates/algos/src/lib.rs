//! # qdm-algos — quantum algorithms
//!
//! The "intermediate quantum algorithm" column of the paper's Table I and
//! the algorithm boxes of its Fig. 2, implemented on the `qdm-sim`
//! state-vector substrate:
//!
//! - [`grover`] — Grover search with oracle-query accounting, BBHT
//!   (unknown #solutions) and Dürr–Høyer minimum finding (Sec. III-A);
//! - [`qaoa`] — the Quantum Approximate Optimization Algorithm over QUBO /
//!   Ising cost Hamiltonians (\[21\]–\[26\], \[28\]);
//! - [`vqe`] — the Variational Quantum Eigensolver with a hardware-efficient
//!   ansatz (\[26\]);
//! - [`qft`] / [`qpe`] — quantum Fourier transform and phase estimation
//!   (Fig. 2);
//! - [`vqc`] — variational quantum circuits with parameter-shift training
//!   for quantum machine learning (\[27\]);
//! - [`optimize`] — the classical half of the hybrid loops: Nelder–Mead,
//!   SPSA, grid search (Sec. III-C.2).

#![warn(missing_docs)]

pub mod adiabatic;
pub mod counting;
pub mod grover;
pub mod optimize;
pub mod qaoa;
pub mod qft;
pub mod qpe;
pub mod vqc;
pub mod vqe;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::adiabatic::{adiabatic_evolve, AdiabaticParams, AdiabaticResult};
    pub use crate::counting::{quantum_count, quantum_count_median, CountEstimate};
    pub use crate::grover::{
        bbht_search, classical_linear_search, classical_random_search, durr_hoyer_minimum,
        grover_circuit, grover_search, grover_state, optimal_iterations, success_probability,
        MinimumResult, OracleCounter,
    };
    pub use crate::optimize::{
        grid_search_2d, nelder_mead, spsa, NelderMeadOptions, OptimResult, SpsaOptions,
    };
    pub use crate::qaoa::{
        qaoa_circuit, qaoa_expectation, qaoa_gate_cost, qaoa_noisy_expectation, qaoa_optimize,
        qaoa_state, EnergyTable, QaoaParams, QaoaResult,
    };
    pub use crate::qft::{inverse_qft_circuit, qft_circuit};
    pub use crate::qpe::{estimate_phase, outcome_distribution, qpe_circuit, PhaseEstimate};
    pub use crate::vqc::Vqc;
    pub use crate::vqe::{ansatz_circuit, ansatz_state, vqe_optimize, VqeParams, VqeResult};
}

pub use prelude::*;
