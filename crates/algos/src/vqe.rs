//! The Variational Quantum Eigensolver (VQE) over diagonal (Ising) cost
//! Hamiltonians — the algorithm of the bushy-join-tree row of Table I \[26\].
//!
//! A hardware-efficient ansatz (layers of RY rotations plus a CZ entangler
//! ring) is optimized classically to minimize `<psi(theta)| H_C |psi(theta)>`.
//! For a diagonal `H_C` the ground state is a basis state, so VQE's value
//! here is as a *pipeline* reproduction: the same hybrid loop the cited
//! works run on hardware, with the same sampling readout.

use crate::optimize::{nelder_mead, NelderMeadOptions};
use crate::qaoa::EnergyTable;
use qdm_qubo::model::{bits_from_index, QuboModel};
use qdm_qubo::solve::SolveResult;
use qdm_sim::circuit::Circuit;
use qdm_sim::state::StateVector;
use rand::Rng;
use std::time::Instant;

/// VQE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct VqeParams {
    /// Ansatz layers (each = RY wall + CZ ring).
    pub layers: usize,
    /// Measurement shots for the final readout.
    pub shots: usize,
    /// Maximum classical-optimizer evaluations.
    pub max_evals: u64,
    /// Random restarts.
    pub starts: usize,
}

impl Default for VqeParams {
    fn default() -> Self {
        Self { layers: 2, shots: 256, max_evals: 600, starts: 2 }
    }
}

/// Outcome of a VQE run.
#[derive(Debug, Clone)]
pub struct VqeResult {
    /// Best sampled assignment.
    pub solve: SolveResult,
    /// Optimized ansatz angles.
    pub angles: Vec<f64>,
    /// Final expectation value `<H_C>`.
    pub expectation: f64,
}

/// Builds the hardware-efficient ansatz circuit for the given angles.
/// Parameter layout: `angles[layer * n + qubit]` with `layers + 1` RY walls
/// (a final rotation wall follows the last entangler).
pub fn ansatz_circuit(n_qubits: usize, layers: usize, angles: &[f64]) -> Circuit {
    assert_eq!(angles.len(), (layers + 1) * n_qubits, "angle count mismatch");
    let mut c = Circuit::new(n_qubits);
    for layer in 0..layers {
        for q in 0..n_qubits {
            c.ry(q, angles[layer * n_qubits + q]);
        }
        for q in 0..n_qubits.saturating_sub(1) {
            c.cz(q, q + 1);
        }
        if n_qubits > 2 {
            c.cz(n_qubits - 1, 0);
        }
    }
    for q in 0..n_qubits {
        c.ry(q, angles[layers * n_qubits + q]);
    }
    c
}

/// The ansatz state for the given angles.
pub fn ansatz_state(n_qubits: usize, layers: usize, angles: &[f64]) -> StateVector {
    ansatz_circuit(n_qubits, layers, angles).run()
}

/// Runs the VQE hybrid loop on a QUBO.
pub fn vqe_optimize(q: &QuboModel, params: &VqeParams, rng: &mut impl Rng) -> VqeResult {
    let start = Instant::now();
    let table = EnergyTable::new(q);
    let n = q.n_vars();
    let layers = params.layers.max(1);
    let dim = (layers + 1) * n;
    let mut evals = 0u64;
    let mut best_angles = vec![0.0; dim];
    let mut best_val = f64::INFINITY;
    for _ in 0..params.starts.max(1) {
        let x0: Vec<f64> = (0..dim).map(|_| rng.random_range(-0.3..0.3)).collect();
        let res = nelder_mead(
            |a| {
                let s = ansatz_state(n, layers, a);
                s.expectation_diagonal(|z| table.energies[z])
            },
            &x0,
            &NelderMeadOptions {
                max_evals: params.max_evals / params.starts.max(1) as u64,
                ..Default::default()
            },
        );
        evals += res.evaluations;
        if res.value < best_val {
            best_val = res.value;
            best_angles = res.params;
        }
    }
    let final_state = ansatz_state(n, layers, &best_angles);
    let mut best_idx = final_state.sample_one(rng);
    for _ in 1..params.shots.max(1) {
        let z = final_state.sample_one(rng);
        if table.energies[z] < table.energies[best_idx] {
            best_idx = z;
        }
    }
    VqeResult {
        solve: SolveResult {
            bits: bits_from_index(best_idx, n),
            energy: table.energies[best_idx],
            evaluations: evals,
            seconds: start.elapsed().as_secs_f64(),
            certified_optimal: false,
        },
        angles: best_angles,
        expectation: best_val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_qubo::solve::solve_exact;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> QuboModel {
        let mut q = QuboModel::new(3);
        q.add_linear(0, 1.0).add_linear(2, -2.0).add_quadratic(0, 1, 1.5).add_quadratic(1, 2, -1.0);
        q
    }

    #[test]
    fn ansatz_at_zero_angles_is_ground_zero_state() {
        let s = ansatz_state(3, 2, &[0.0; 9]);
        assert!((s.probability(0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ansatz_circuit_shape() {
        let c = ansatz_circuit(4, 2, &[0.1; 12]);
        // 2 layers * (4 RY + 4 CZ) + 4 final RY.
        assert_eq!(c.gate_count(), 2 * 8 + 4);
        assert_eq!(c.multi_qubit_gate_count(), 8);
    }

    #[test]
    fn vqe_finds_optimum_on_small_model() {
        let q = model();
        let mut rng = StdRng::seed_from_u64(8);
        let res = vqe_optimize(
            &q,
            &VqeParams { max_evals: 1500, starts: 3, ..Default::default() },
            &mut rng,
        );
        let exact = solve_exact(&q);
        assert!(
            (res.solve.energy - exact.energy).abs() < 1e-9,
            "vqe {} vs exact {}",
            res.solve.energy,
            exact.energy
        );
        // Expectation close to the ground energy.
        assert!(res.expectation < exact.energy + 0.5);
    }

    #[test]
    fn angle_count_is_validated() {
        let result = std::panic::catch_unwind(|| ansatz_circuit(3, 1, &[0.0; 2]));
        assert!(result.is_err());
    }
}
