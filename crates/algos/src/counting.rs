//! Quantum counting: amplitude estimation of the number of marked records.
//!
//! Combines the two boxes of the paper's Fig. 2 that its surveyed works do
//! *not* yet combine — Grover's operator and quantum phase estimation —
//! into the database primitive they naturally form: **cardinality
//! estimation**. The Grover iterate `G` rotates the uniform state in a 2-D
//! subspace by `2 theta` with `sin^2(theta) = M/N`; QPE on `G` therefore
//! reads `theta` to `t` bits using `2^t - 1` (controlled) Grover
//! applications, versus the `N` probes of an exact classical count.
//!
//! The simulation uses the exact spectral reduction: the uniform state has
//! overlap `1/sqrt(2)` with each of the two `G`-eigenvectors (eigenphases
//! `±2 theta`), so the counting register's outcome distribution is the
//! equal mixture of the two QPE distributions — identical to simulating
//! the full `t + n` qubit circuit, without the exponential cost of doing
//! so.

use crate::qpe::outcome_distribution;
use rand::Rng;

/// Result of a quantum counting run.
#[derive(Debug, Clone, PartialEq)]
pub struct CountEstimate {
    /// Estimated number of marked records.
    pub estimate: f64,
    /// Measured counting-register value.
    pub raw: usize,
    /// Counting precision in bits.
    pub t_bits: usize,
    /// (Controlled) Grover-operator applications used: `2^t - 1`.
    pub grover_applications: u64,
    /// Probes an exact classical count would need: `N`.
    pub classical_probes: u64,
}

/// Runs quantum counting over a `2^n`-record table with `t` bits of
/// precision. The `marked` predicate defines the selection whose
/// cardinality is estimated.
pub fn quantum_count(
    n_qubits: usize,
    t_bits: usize,
    marked: impl Fn(usize) -> bool,
    rng: &mut impl Rng,
) -> CountEstimate {
    assert!(t_bits >= 1);
    let n = 1usize << n_qubits;
    // Simulator-internal ground truth (the physical oracle "knows" it the
    // same way apply_phase_flip evaluates the predicate in superposition).
    let m = (0..n).filter(|&x| marked(x)).count();
    let theta = ((m as f64 / n as f64).sqrt()).asin();
    // Eigenphases of G are ±2 theta, i.e. QPE phases ±theta/pi (mod 1).
    let phi = theta / std::f64::consts::PI;
    let dist_plus = outcome_distribution(t_bits, phi);
    let dist_minus = outcome_distribution(t_bits, (1.0 - phi).fract());
    // Sample from the equal mixture.
    let r: f64 = rng.random::<f64>();
    let dist = if rng.random::<bool>() { &dist_plus } else { &dist_minus };
    let mut acc = 0.0;
    let mut raw = dist.len() - 1;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if r < acc {
            raw = i;
            break;
        }
    }
    let theta_hat = std::f64::consts::PI * raw as f64 / (1usize << t_bits) as f64;
    let estimate = n as f64 * theta_hat.sin().powi(2);
    CountEstimate {
        estimate,
        raw,
        t_bits,
        grover_applications: (1u64 << t_bits) - 1,
        classical_probes: n as u64,
    }
}

/// Median-of-runs counting: repeats [`quantum_count`] and returns the
/// median estimate, the standard variance-reduction wrapper.
pub fn quantum_count_median(
    n_qubits: usize,
    t_bits: usize,
    runs: usize,
    marked: impl Fn(usize) -> bool,
    rng: &mut impl Rng,
) -> CountEstimate {
    assert!(runs >= 1);
    let mut results: Vec<CountEstimate> =
        (0..runs).map(|_| quantum_count(n_qubits, t_bits, &marked, rng)).collect();
    results.sort_by(|a, b| a.estimate.total_cmp(&b.estimate));
    let total_apps: u64 = results.iter().map(|r| r.grover_applications).sum();
    let mut median = results.swap_remove(runs / 2);
    median.grover_applications = total_apps;
    median
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_exactly_representable_fractions() {
        let mut rng = StdRng::seed_from_u64(1);
        // M/N = 1/2 -> theta = pi/4 -> phi = 1/4, exact on >= 2 bits.
        let res = quantum_count(6, 4, |x| x % 2 == 0, &mut rng);
        assert!((res.estimate - 32.0).abs() < 1e-9, "estimate {}", res.estimate);
    }

    #[test]
    fn zero_and_full_are_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let none = quantum_count(5, 5, |_| false, &mut rng);
        assert!(none.estimate.abs() < 1e-9);
        let all = quantum_count(5, 5, |_| true, &mut rng);
        assert!((all.estimate - 32.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_improves_with_precision_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        let truth = 13.0;
        let err = |t: usize, rng: &mut StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..40 {
                let res = quantum_count(7, t, |x| x < 13, rng);
                total += (res.estimate - truth).abs();
            }
            total / 40.0
        };
        let coarse = err(4, &mut rng);
        let fine = err(8, &mut rng);
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
        assert!(fine < 1.5, "fine error {fine}");
    }

    #[test]
    fn median_wrapper_is_robust() {
        let mut rng = StdRng::seed_from_u64(4);
        let res = quantum_count_median(8, 7, 9, |x| x % 10 == 0, &mut rng);
        let truth = (0..256).filter(|x| x % 10 == 0).count() as f64;
        assert!((res.estimate - truth).abs() <= 3.0, "estimate {} vs {truth}", res.estimate);
        assert_eq!(res.grover_applications, 9 * 127);
    }

    #[test]
    fn query_advantage_over_classical_count() {
        let mut rng = StdRng::seed_from_u64(5);
        // N = 4096; 8-bit counting uses 255 Grover applications vs 4096 probes.
        let res = quantum_count(12, 8, |x| x % 100 == 0, &mut rng);
        assert!(res.grover_applications < res.classical_probes / 8);
    }
}
