//! The quantum Fourier transform (QFT) — the subroutine behind quantum
//! phase estimation (one of the algorithm boxes in the paper's Fig. 2).

use qdm_sim::circuit::{Circuit, Gate};

/// Builds the QFT circuit over `n` qubits (with final bit-reversal swaps),
/// mapping `|x>` to `(1/sqrt(N)) sum_y e^{2 pi i x y / N} |y>`.
pub fn qft_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for target in (0..n).rev() {
        c.h(target);
        for (k, control) in (0..target).rev().enumerate() {
            let angle = std::f64::consts::PI / (1u64 << (k + 2)) as f64 * 2.0;
            c.push(Gate::CPhase(control, target, angle));
        }
    }
    for q in 0..n / 2 {
        c.push(Gate::Swap(q, n - 1 - q));
    }
    c
}

/// The inverse QFT circuit.
pub fn inverse_qft_circuit(n: usize) -> Circuit {
    qft_circuit(n).dagger()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_sim::complex::Complex64;
    use qdm_sim::state::StateVector;

    fn dft_reference(x: usize, n_qubits: usize) -> Vec<Complex64> {
        let n = 1usize << n_qubits;
        (0..n)
            .map(|y| {
                Complex64::cis(2.0 * std::f64::consts::PI * (x * y) as f64 / n as f64)
                    .scale(1.0 / (n as f64).sqrt())
            })
            .collect()
    }

    #[test]
    fn qft_matches_dft_on_basis_states() {
        for n_qubits in 1..=4 {
            let n = 1usize << n_qubits;
            for x in 0..n {
                let mut s = StateVector::basis_state(n_qubits, x);
                qft_circuit(n_qubits).apply_to(&mut s);
                let want = dft_reference(x, n_qubits);
                for (y, w) in want.iter().enumerate() {
                    assert!(
                        s.amplitude(y).approx_eq(*w, 1e-9),
                        "n={n_qubits} x={x} y={y}: {} vs {w}",
                        s.amplitude(y)
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_qft_undoes_qft() {
        for x in 0..8 {
            let mut s = StateVector::basis_state(3, x);
            qft_circuit(3).apply_to(&mut s);
            inverse_qft_circuit(3).apply_to(&mut s);
            assert!((s.probability(x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let mut s = StateVector::new(4);
        qft_circuit(4).apply_to(&mut s);
        for y in 0..16 {
            assert!((s.probability(y) - 1.0 / 16.0).abs() < 1e-9);
        }
    }
}
