//! # serde (workspace shim)
//!
//! The workspace annotates a handful of model types with
//! `#[derive(Serialize, Deserialize)]` to document their
//! serialization-worthiness, but nothing in-tree serializes them yet and the
//! build environment has no crates.io access. This facade keeps those
//! annotations compiling by re-exporting **no-op** derive macros from
//! `serde_derive` alongside empty marker traits. When real serialization
//! lands (e.g. a wire format for the runtime service), this shim is the seam
//! to replace with the real `serde`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait DeserializeMarker {}
