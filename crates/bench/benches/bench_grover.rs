//! E6 — Grover vs classical search benchmark: wall time and (implicitly)
//! the O(sqrt N) vs O(N) oracle scaling across database sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_bench::exp_search::sample_database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_grover_vs_classical(c: &mut Criterion) {
    let mut group = c.benchmark_group("grover/search_known_target");
    group.sample_size(20);
    for n_qubits in [6usize, 8, 10, 12] {
        let db = sample_database(n_qubits, 42);
        let target = db.len() * 7 / 11;
        group.bench_with_input(
            BenchmarkId::new("quantum", 1usize << n_qubits),
            &n_qubits,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| {
                    black_box(db.search_known(|r| r.id == target, 1, &mut rng));
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classical_scan", 1usize << n_qubits),
            &n_qubits,
            |b, _| {
                b.iter(|| {
                    black_box(db.classical_search(|r| r.id == target));
                });
            },
        );
    }
    group.finish();
}

fn bench_durr_hoyer(c: &mut Criterion) {
    c.bench_function("grover/durr_hoyer_minimum_8q", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            black_box(qdm_algos::grover::durr_hoyer_minimum(
                8,
                |x| ((x as f64) - 100.0).abs(),
                &mut rng,
            ));
        });
    });
}

criterion_group!(benches, bench_grover_vs_classical, bench_durr_hoyer);
criterion_main!(benches);
