//! E17/E19 — hardware-mapping benchmarks: Chimera minor embedding (greedy
//! and clique) and the embedded solve round trip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_anneal::embedding::{clique_embedding, find_embedding, solve_on_chimera, ChimeraGraph};
use qdm_anneal::sa::{simulated_annealing, SaParams};
use qdm_bench::exp_meta::random_qubo;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn dense_adjacency(n: usize) -> Vec<Vec<usize>> {
    (0..n).map(|v| (0..n).filter(|&u| u != v).collect()).collect()
}

fn bench_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding/greedy_dense");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let adj = dense_adjacency(n);
        let graph = ChimeraGraph::new(12);
        group.bench_with_input(BenchmarkId::from_parameter(n), &adj, |b, adj| {
            b.iter(|| black_box(find_embedding(adj, &graph)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("embedding/clique");
    for n in [16usize, 32, 48] {
        let graph = ChimeraGraph::new(12);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(clique_embedding(n, &graph)));
        });
    }
    group.finish();
}

fn bench_embedded_solve(c: &mut Criterion) {
    c.bench_function("embedding/solve_on_chimera_6v", |b| {
        let q = random_qubo(6, 3);
        let graph = ChimeraGraph::new(4);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(
                solve_on_chimera(&q, &graph, |phys| {
                    simulated_annealing(
                        phys,
                        &SaParams { restarts: 1, sweeps: 60, ..SaParams::scaled_to(phys) },
                        &mut rng,
                    )
                    .bits
                })
                .expect("fits"),
            )
        });
    });
}

criterion_group!(benches, bench_embedding, bench_embedded_solve);
criterion_main!(benches);
