//! E8/E11 — variational-algorithm benchmarks: QAOA layers, VQE iterations
//! and VQC gradient steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_algos::qaoa::{qaoa_state, EnergyTable};
use qdm_algos::vqc::Vqc;
use qdm_algos::vqe::ansatz_state;
use qdm_bench::exp_meta::random_qubo;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_qaoa_layers(c: &mut Criterion) {
    let q = random_qubo(12, 8);
    let table = EnergyTable::new(&q);
    let mut group = c.benchmark_group("qaoa/state_preparation_12q");
    for p in [1usize, 2, 4, 8] {
        let angles: Vec<f64> = (0..2 * p).map(|i| 0.1 * (i + 1) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(p), &angles, |b, angles| {
            b.iter(|| black_box(qaoa_state(&table, angles)));
        });
    }
    group.finish();
}

fn bench_vqe_ansatz(c: &mut Criterion) {
    let mut group = c.benchmark_group("vqe/ansatz_state");
    for n in [6usize, 10, 14] {
        let layers = 2;
        let angles = vec![0.2; (layers + 1) * n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &angles, |b, angles| {
            b.iter(|| black_box(ansatz_state(n, layers, angles)));
        });
    }
    group.finish();
}

fn bench_vqc_gradient(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let vqc = Vqc::new(4, 2, &mut rng);
    let x = [0.3, 0.7, 0.1, 0.9];
    c.bench_function("vqc/forward_4q", |b| b.iter(|| black_box(vqc.predict(&x))));
    c.bench_function("vqc/parameter_shift_gradient_4q", |b| b.iter(|| black_box(vqc.gradient(&x))));
}

criterion_group!(benches, bench_qaoa_layers, bench_vqe_ansatz, bench_vqc_gradient);
criterion_main!(benches);
