//! Simulator kernel benchmarks: gate application and circuit execution
//! across register widths (the substrate cost behind every gate-based
//! experiment, and the Fig. 1(b) device-scale sanity check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_sim::circuit::Circuit;
use qdm_sim::gates;
use qdm_sim::noise::{run_noisy, NoiseModel};
use qdm_sim::state::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn layered_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..layers {
        for q in 0..n {
            c.ry(q, 0.1 * (l + q) as f64);
        }
        for q in 0..n - 1 {
            c.cnot(q, q + 1);
        }
    }
    c
}

fn bench_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/single_qubit_gate");
    for n in [8usize, 12, 16, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut s = StateVector::uniform(n);
            let h = gates::hadamard();
            b.iter(|| {
                s.apply_single(black_box(n / 2), &h);
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sim/cnot");
    for n in [8usize, 12, 16, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut s = StateVector::uniform(n);
            let x = gates::pauli_x();
            b.iter(|| {
                s.apply_controlled(black_box(&[0]), n - 1, &x);
            });
        });
    }
    group.finish();
}

fn bench_circuits(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/layered_circuit");
    group.sample_size(20);
    for n in [5usize, 10, 14] {
        let circuit = layered_circuit(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| black_box(circuit.run()));
        });
    }
    group.finish();

    // Fig. 1(b): a 5-qubit chip with realistic depolarizing noise.
    c.bench_function("sim/noisy_five_qubit_chip", |b| {
        let circuit = layered_circuit(5, 4);
        let model = NoiseModel::depolarizing(0.001, 0.01);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(run_noisy(&circuit, &model, &mut rng)));
    });
}

criterion_group!(benches, bench_gates, bench_circuits);
criterion_main!(benches);
