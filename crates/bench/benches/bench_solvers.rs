//! E2/E7 — solver benchmarks: every Fig. 2 route timed on the same QUBO,
//! annealing scaling with problem size, and the compiled-CSR vs.
//! BTreeMap-path comparison (`solvers/*`) whose headline ratio is printed
//! as `solvers/compiled_speedup` and recorded in `BENCH_solvers.json` at
//! the workspace root so future PRs have a perf trajectory to diff against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_anneal::sa::{simulated_annealing, simulated_annealing_parallel, SaParams};
use qdm_anneal::sqa::{simulated_quantum_annealing, SqaParams};
use qdm_anneal::tabu::{tabu_search, TabuParams};
use qdm_bench::exp_meta::random_qubo;
use qdm_core::solver::full_registry;
use qdm_qubo::model::QuboModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn bench_fig2_routes(c: &mut Criterion) {
    let q = random_qubo(10, 7);
    let mut group = c.benchmark_group("fig2/route");
    group.sample_size(10);
    for solver in full_registry() {
        group.bench_function(solver.name(), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(solver.solve(&q, &mut rng)));
        });
    }
    group.finish();
}

fn bench_annealer_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal/scaling");
    group.sample_size(10);
    for n in [16usize, 32, 64, 128] {
        let q = random_qubo(n, n as u64);
        group.bench_with_input(BenchmarkId::new("sa", n), &q, |b, q| {
            let mut rng = StdRng::seed_from_u64(4);
            let params = SaParams { restarts: 1, sweeps: 100, ..SaParams::scaled_to(q) };
            b.iter(|| black_box(simulated_annealing(q, &params, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("sqa", n), &q, |b, q| {
            let mut rng = StdRng::seed_from_u64(5);
            let params = SqaParams { replicas: 8, sweeps: 50, ..SqaParams::scaled_to(q) };
            b.iter(|| black_box(simulated_quantum_annealing(q, &params, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("tabu", n), &q, |b, q| {
            let mut rng = StdRng::seed_from_u64(6);
            let params = TabuParams { iterations: 500, restarts: 1, ..Default::default() };
            b.iter(|| black_box(tabu_search(q, &params, &mut rng)));
        });
    }
    group.finish();
}

/// The acceptance-criteria instance: 256 variables at 5% coupling density,
/// shared with `bench_runtime` so both baselines measure the same model.
fn dense_instance() -> QuboModel {
    qdm_bench::exp_meta::dense_acceptance_instance()
}

fn random_assignment(n: usize, rng: &mut StdRng) -> Vec<bool> {
    (0..n).map(|_| rng.random::<bool>()).collect()
}

/// One Metropolis sweep on the seed path: every flip delta re-derived from
/// the model's BTreeMap via `QuboModel::flip_delta` (O(m) per proposal).
fn sa_sweep_btreemap(q: &QuboModel, x: &mut [bool], t: f64, rng: &mut StdRng) -> f64 {
    let mut moved = 0.0;
    for i in 0..q.n_vars() {
        let delta = q.flip_delta(x, i);
        if delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp() {
            x[i] = !x[i];
            moved += delta;
        }
    }
    moved
}

/// The same sweep the way the seed solvers actually ran it: incremental
/// local fields over `neighbor_lists()` Vec-of-Vec adjacency (O(deg) per
/// accepted flip, but pointer-chasing per-row heap allocations). This is
/// the honest "what did the CSR layout itself buy" baseline, as opposed to
/// the O(m)-per-proposal BTreeMap path above.
fn sa_sweep_neighbor_lists(
    adj: &[Vec<(usize, f64)>],
    x: &mut [bool],
    fields: &mut [f64],
    t: f64,
    rng: &mut StdRng,
) -> f64 {
    let mut moved = 0.0;
    for i in 0..x.len() {
        let delta = if x[i] { -fields[i] } else { fields[i] };
        if delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp() {
            let sign = if x[i] { -1.0 } else { 1.0 };
            x[i] = !x[i];
            moved += delta;
            for &(nb, w) in &adj[i] {
                fields[nb] += sign * w;
            }
        }
    }
    moved
}

/// The same sweep on the compiled CSR form with incremental local fields
/// (O(deg) per accepted flip, O(1) per rejection).
fn sa_sweep_compiled(
    c: &qdm_qubo::compiled::CompiledQubo,
    x: &mut [bool],
    fields: &mut [f64],
    t: f64,
    rng: &mut StdRng,
) -> f64 {
    let mut moved = 0.0;
    for i in 0..c.n_vars() {
        let delta = if x[i] { -fields[i] } else { fields[i] };
        if delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp() {
            moved += c.apply_flip(x, fields, i);
        }
    }
    moved
}

fn bench_compiled_vs_btreemap(c: &mut Criterion) {
    let q = dense_instance();
    let compiled = q.compile();
    let n = q.n_vars();
    let mut rng = StdRng::seed_from_u64(99);
    let x = random_assignment(n, &mut rng);

    let mut group = c.benchmark_group("solvers/energy");
    group.sample_size(10);
    group.bench_function("btreemap", |b| b.iter(|| black_box(q.energy(&x))));
    group.bench_function("compiled", |b| b.iter(|| black_box(compiled.energy(&x))));
    group.finish();

    let mut group = c.benchmark_group("solvers/flip");
    group.sample_size(10);
    group.bench_function("btreemap", |b| {
        b.iter(|| (0..n).map(|i| q.flip_delta(&x, i)).sum::<f64>())
    });
    group.bench_function("compiled", |b| {
        b.iter(|| (0..n).map(|i| compiled.flip_delta(&x, i)).sum::<f64>())
    });
    group.finish();

    let t = q.max_abs_coefficient();
    let mut group = c.benchmark_group("solvers/sa_sweep");
    group.sample_size(10);
    group.bench_function("btreemap", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = random_assignment(n, &mut rng);
        b.iter(|| black_box(sa_sweep_btreemap(&q, &mut x, t, &mut rng)));
    });
    group.bench_function("neighbor_lists", |b| {
        let adj = q.neighbor_lists();
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = random_assignment(n, &mut rng);
        let mut fields = compiled.local_fields(&x);
        b.iter(|| black_box(sa_sweep_neighbor_lists(&adj, &mut x, &mut fields, t, &mut rng)));
    });
    group.bench_function("compiled", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = random_assignment(n, &mut rng);
        let mut fields = compiled.local_fields(&x);
        b.iter(|| black_box(sa_sweep_compiled(&compiled, &mut x, &mut fields, t, &mut rng)));
    });
    group.finish();

    // Headline numbers: identical sweep trajectories timed directly on both
    // paths, plus single-shot energy/flip timings for the JSON baseline.
    let time_per = |f: &mut dyn FnMut(), reps: usize| -> f64 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() * 1e9 / reps as f64
    };
    let mut rng_a = StdRng::seed_from_u64(13);
    let mut x_a = random_assignment(n, &mut rng_a);
    let btreemap_ns = time_per(
        &mut || {
            black_box(sa_sweep_btreemap(&q, &mut x_a, t, &mut rng_a));
        },
        20,
    );
    let mut rng_b = StdRng::seed_from_u64(13);
    let mut x_b = random_assignment(n, &mut rng_b);
    let mut fields_b = compiled.local_fields(&x_b);
    let compiled_ns = time_per(
        &mut || {
            black_box(sa_sweep_compiled(&compiled, &mut x_b, &mut fields_b, t, &mut rng_b));
        },
        2000,
    );
    // The seed-style incremental sweep over Vec-of-Vec adjacency: the
    // honest measure of what the CSR layout itself bought, since the seed
    // annealers never paid the O(m) BTreeMap scan per proposal.
    let adj = q.neighbor_lists();
    let mut rng_c = StdRng::seed_from_u64(13);
    let mut x_c = random_assignment(n, &mut rng_c);
    let mut fields_c = compiled.local_fields(&x_c);
    let adjacency_ns = time_per(
        &mut || {
            black_box(sa_sweep_neighbor_lists(&adj, &mut x_c, &mut fields_c, t, &mut rng_c));
        },
        2000,
    );
    // The paths start identically seeded and virtually always walk the
    // same trajectory, but low-bit float differences between incremental
    // local fields and fresh O(m) recomputation can in principle tip an
    // accept decision, so trajectory equality is not asserted here — value
    // equivalence is proven by `crates/qubo/tests/compiled_matches_model.rs`.
    let speedup = btreemap_ns / compiled_ns;
    let layout_speedup = adjacency_ns / compiled_ns;
    println!(
        "solvers/compiled_speedup: {speedup:.2}x vs BTreeMap path, {layout_speedup:.2}x vs seed \
         adjacency lists ({n} vars, {} couplings, SA sweep {:.1} µs btreemap / {:.2} µs \
         neighbor-lists / {:.2} µs compiled)",
        q.n_interactions(),
        btreemap_ns / 1e3,
        adjacency_ns / 1e3,
        compiled_ns / 1e3,
    );

    let energy_model_ns = time_per(
        &mut || {
            black_box(q.energy(&x));
        },
        200,
    );
    let energy_compiled_ns = time_per(
        &mut || {
            black_box(compiled.energy(&x));
        },
        200,
    );
    let flip_model_ns = time_per(
        &mut || {
            black_box((0..n).map(|i| q.flip_delta(&x, i)).sum::<f64>());
        },
        50,
    );
    let flip_compiled_ns = time_per(
        &mut || {
            black_box((0..n).map(|i| compiled.flip_delta(&x, i)).sum::<f64>());
        },
        50,
    );

    // Machine-readable baseline at the workspace root; hand-rolled JSON
    // because the serde shim has no serializer.
    let json = format!(
        "{{\n  \"bench\": \"solvers\",\n  \"instance\": {{\"n_vars\": {n}, \"density\": 0.05, \
         \"n_interactions\": {m}}},\n  \"sa_sweep_ns\": {{\"btreemap\": {btreemap_ns:.0}, \
         \"neighbor_lists\": {adjacency_ns:.0}, \"compiled\": {compiled_ns:.0}}},\n  \
         \"energy_ns\": {{\"btreemap\": {energy_model_ns:.0}, \
         \"compiled\": {energy_compiled_ns:.0}}},\n  \"flip_all_vars_ns\": \
         {{\"btreemap\": {flip_model_ns:.0}, \"compiled\": {flip_compiled_ns:.0}}},\n  \
         \"compiled_speedup\": {speedup:.2},\n  \"layout_speedup\": {layout_speedup:.2}\n}}\n",
        m = q.n_interactions(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solvers.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("solvers/baseline written to BENCH_solvers.json"),
        Err(e) => println!("solvers/baseline NOT written ({e})"),
    }
}

fn bench_parallel_restarts(c: &mut Criterion) {
    let q = random_qubo(96, 21);
    let params = SaParams { restarts: 8, sweeps: 60, ..SaParams::scaled_to(&q) };
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let mut group = c.benchmark_group("solvers/parallel_sa");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(simulated_annealing_parallel(&q, &params, 5, 1)));
    });
    group.bench_function(format!("threads-{threads}"), |b| {
        b.iter(|| black_box(simulated_annealing_parallel(&q, &params, 5, threads)));
    });
    group.finish();
    // Like `runtime/speedup`, the wall-clock ratio here only exceeds 1 on a
    // multi-core runner; results are bit-identical either way.
}

criterion_group!(
    benches,
    bench_fig2_routes,
    bench_annealer_scaling,
    bench_compiled_vs_btreemap,
    bench_parallel_restarts
);
criterion_main!(benches);
