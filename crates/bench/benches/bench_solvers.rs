//! E2/E7 — solver benchmarks: every Fig. 2 route timed on the same QUBO,
//! plus annealing scaling with problem size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_anneal::sa::{simulated_annealing, SaParams};
use qdm_anneal::sqa::{simulated_quantum_annealing, SqaParams};
use qdm_anneal::tabu::{tabu_search, TabuParams};
use qdm_bench::exp_meta::random_qubo;
use qdm_core::solver::full_registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig2_routes(c: &mut Criterion) {
    let q = random_qubo(10, 7);
    let mut group = c.benchmark_group("fig2/route");
    group.sample_size(10);
    for solver in full_registry() {
        group.bench_function(solver.name(), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(solver.solve(&q, &mut rng)));
        });
    }
    group.finish();
}

fn bench_annealer_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal/scaling");
    group.sample_size(10);
    for n in [16usize, 32, 64, 128] {
        let q = random_qubo(n, n as u64);
        group.bench_with_input(BenchmarkId::new("sa", n), &q, |b, q| {
            let mut rng = StdRng::seed_from_u64(4);
            let params = SaParams { restarts: 1, sweeps: 100, ..SaParams::scaled_to(q) };
            b.iter(|| black_box(simulated_annealing(q, &params, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("sqa", n), &q, |b, q| {
            let mut rng = StdRng::seed_from_u64(5);
            let params = SqaParams { replicas: 8, sweeps: 50, ..SqaParams::scaled_to(q) };
            b.iter(|| black_box(simulated_quantum_annealing(q, &params, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("tabu", n), &q, |b, q| {
            let mut rng = StdRng::seed_from_u64(6);
            let params = TabuParams { iterations: 500, restarts: 1, ..Default::default() };
            b.iter(|| black_box(tabu_search(q, &params, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_routes, bench_annealer_scaling);
criterion_main!(benches);
