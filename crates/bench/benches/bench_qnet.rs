//! E4/E5/E14/E15/E16 — quantum-internet benchmarks: nonlocal game rounds,
//! teleportation, repeater-chain evaluation and BB84 sessions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_net::nonlocal::{chsh_sampled, ghz_sampled, ChshStrategy};
use qdm_net::qkd::{run_bb84, Bb84Params};
use qdm_net::repeater::RepeaterChain;
use qdm_net::teleport::{random_qubit, teleport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_nonlocal(c: &mut Criterion) {
    c.bench_function("nonlocal/chsh_1000_rounds", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = ChshStrategy::optimal();
        b.iter(|| black_box(chsh_sampled(&strat, 1000, &mut rng)));
    });
    c.bench_function("nonlocal/ghz_1000_rounds", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(ghz_sampled(1000, &mut rng)));
    });
}

fn bench_teleport(c: &mut Criterion) {
    c.bench_function("qnet/teleport_single_qubit", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let payload = random_qubit(&mut rng);
        b.iter(|| black_box(teleport(&payload, &mut rng)));
    });
}

fn bench_repeater(c: &mut Criterion) {
    let mut group = c.benchmark_group("qnet/chain_performance");
    for segments in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(segments), &segments, |b, &segments| {
            let chain = RepeaterChain::with_segments(1000.0, segments);
            b.iter(|| black_box(chain.performance()));
        });
    }
    group.finish();
}

fn bench_qkd(c: &mut Criterion) {
    let mut group = c.benchmark_group("qkd/bb84");
    group.sample_size(10);
    for n in [512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(4);
            let params = Bb84Params { n_qubits: n, ..Default::default() };
            b.iter(|| black_box(run_bb84(&params, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nonlocal, bench_teleport, bench_repeater, bench_qkd);
criterion_main!(benches);
