//! Runtime-service throughput: a batch of independent MQO solves run (a)
//! sequentially through `run_pipeline` on one thread and (b) through the
//! `qdm-runtime` worker pool. Every job gets a fresh seed each iteration so
//! the result cache never short-circuits the work being measured; a third
//! bench measures the cache-hit path separately. On a multi-core runner the
//! pooled batch completes ≥ 2× faster than the sequential loop (the printed
//! `runtime/speedup` line reports the measured ratio).
//!
//! A fourth group compares synchronous `run_batch` against session
//! submission with `completions()` streaming: the streaming consumer starts
//! post-processing each result the moment it finishes instead of waiting
//! for the whole batch (the printed `runtime/streaming` line reports the
//! measured ratio of the two).
//!
//! The `runtime/fairness` group measures what the fair scheduler buys a
//! starved-priority mix: a single worker, a sustained flood of High jobs,
//! and a handful of Low jobs submitted early. Under the legacy
//! strict-priority drain the Low jobs complete dead last; under fair-share
//! scheduling (pop-counted aging) each is served within a bounded number
//! of pops. The printed `runtime/fairness` lines report the Low-lane p99
//! (tail) latency under both policies and the tail-cut ratio.
//!
//! The `runtime/observability` group measures what the default-on tracing
//! substrate costs: the same cache-miss batch through two otherwise
//! identical services, one with the ring-buffer `TraceSink` and stage
//! probes active (`TraceConfig::Ring`) and one with
//! `TraceConfig::Disabled`. Samples alternate between the two services so
//! machine drift hits both equally; the printed `runtime/observability`
//! line reports the median overhead, gated below 5%.
//!
//! The `runtime/cluster` group compares a 4×1-shard cluster against one
//! 4-worker service at equal total worker count: aggregate batch
//! throughput (parity is the goal — sharding should cost nothing when the
//! load is uniform) and the Low-lane p99 under a High flood, plus a
//! saturation run against a tight token bucket and shedding watermark
//! that records the shed rate. On a single-CPU runner both arrangements
//! serialize onto one core, so the parity ratio — not absolute
//! throughput — is the signal.
//!
//! The `runtime/robustness` group prices the fault-tolerance machinery:
//! the retry path (a batch where every job's first solve attempt fails and
//! its retry succeeds, against the same batch clean), time-to-recover
//! after a backend dies (with a circuit breaker only the tripping job pays
//! a retry; without one every job re-discovers the dead backend), and
//! failover throughput (the 4×1 cluster batch with one shard reported
//! dead, against the all-healthy cluster).
//!
//! The `runtime/recovery` group prices the crash-safety machinery: the
//! durable job journal on the clean path (every job pays a `Submitted`
//! append — QUBO serialization included — and a `Completed` one), replay
//! throughput over a crashed backlog (journal scan plus full re-solve),
//! snapshot save/load latency on a warm solution store, and the solver
//! checkpoint-emission overhead, which is gated <5% — resumability must
//! stay close to free.
//!
//! The `runtime/cost` group scores the calibrated cost model itself: the
//! predicted-vs-actual error factor across one backend per estimator
//! family and a sweep of sizes (two warm-up solves calibrate, three
//! measured solves score; the median is gated < 2×), and the race-loser
//! waste a k=2 race pays under the legacy EWMA-only ranking (which
//! happily extrapolates a tiny-job latency EWMA to a big job) versus the
//! cost model's analytic-curve extrapolation.
//!
//! The `runtime/compile_once` group measures the compile-amortization win
//! of the shared-`CompiledQubo` pipeline on the 256-var/5% acceptance
//! instance — what a cache-miss 4-backend race used to pay in compiles
//! (one per backend plus one for fingerprinting) versus the single shared
//! compile it pays now — plus race-vs-best-single latency, and writes the
//! `BENCH_runtime.json` baseline (including the fairness, observability,
//! cluster, robustness, and recovery numbers when those groups ran) at the
//! workspace root. CI runs the smoke set via `cargo bench --bench
//! bench_runtime -- runtime/fairness runtime/observability runtime/cluster
//! runtime/robustness runtime/cost runtime/recovery runtime/compile_once`
//! (the criterion shim treats positional args as id filters).

use criterion::{criterion_group, criterion_main, Criterion};
use qdm_anneal::sa::SaParams;
use qdm_anneal::sqa::SqaParams;
use qdm_anneal::tabu::TabuParams;
use qdm_core::pipeline::{run_pipeline, JobPriority, PipelineOptions};
use qdm_core::problem::{Decoded, DmProblem};
use qdm_core::solver::{SaParallelSolver, SaSolver, SqaSolver, TabuSolver};
use qdm_problems::mqo::{MqoInstance, MqoProblem};
use qdm_qubo::model::QuboModel;
use qdm_qubo::probe::{SolverCheckpoint, StageProbe};
use qdm_runtime::cost::CostModel;
use qdm_runtime::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

const N_JOBS: usize = 16;

fn workload() -> Vec<Arc<MqoProblem>> {
    (0..N_JOBS as u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            Arc::new(MqoProblem::new(MqoInstance::generate(8, 3, 0.35, &mut rng)))
        })
        .collect()
}

fn opts() -> PipelineOptions {
    PipelineOptions { repair: true, ..Default::default() }
}

/// Monotone seed source so every measured iteration is a cache miss.
static SEED: AtomicU64 = AtomicU64::new(1_000_000);

fn run_sequential(problems: &[Arc<MqoProblem>]) {
    let solver = SaSolver::default();
    let options = opts();
    for problem in problems {
        let seed = SEED.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(seed);
        std::hint::black_box(run_pipeline(problem.as_ref(), &solver, &options, &mut rng));
    }
}

fn run_pooled(service: &SolverService, problems: &[Arc<MqoProblem>]) {
    let options = opts();
    let batch: Vec<JobSpec> = problems
        .iter()
        .map(|p| {
            let seed = SEED.fetch_add(1, Ordering::Relaxed);
            JobSpec::new(Arc::clone(p) as SharedProblem, seed)
                .with_options(options.clone())
                .on_backend("simulated-annealing")
        })
        .collect();
    let outcomes = service.run_batch(batch);
    assert!(outcomes.iter().all(|o| o.is_ok()));
}

fn bench_throughput(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/throughput") {
        return;
    }
    let problems = workload();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let service =
        SolverService::new(ServiceConfig { workers, cache_capacity: 8, ..Default::default() });

    let mut group = c.benchmark_group("runtime/throughput");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| run_sequential(&problems)));
    group.bench_function(format!("pool-{workers}-workers"), |b| {
        b.iter(|| run_pooled(&service, &problems));
    });
    group.finish();

    // Direct speedup measurement over a few full batches (criterion medians
    // are per-callable; this prints the headline ratio).
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        run_sequential(&problems);
    }
    let sequential = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..reps {
        run_pooled(&service, &problems);
    }
    let pooled = t1.elapsed().as_secs_f64();
    println!(
        "runtime/speedup: {:.2}x ({} jobs/batch, {} workers, seq {:.3}s vs pool {:.3}s)",
        sequential / pooled,
        N_JOBS,
        workers,
        sequential / reps as f64,
        pooled / reps as f64
    );
}

/// Per-result post-processing a streaming consumer can overlap with
/// solving: a pass over the decoded summary stands in for decode work.
fn postprocess(outcome: &JobOutcome) -> usize {
    let result = outcome.as_ref().expect("solvable");
    std::hint::black_box(result.report.decoded.summary.len() + result.report.bits.len())
}

fn run_streaming(service: &SolverService, problems: &[Arc<MqoProblem>]) {
    let options = opts();
    let session = service.session(SessionConfig { queue_capacity: N_JOBS, ..Default::default() });
    for problem in problems {
        let seed = SEED.fetch_add(1, Ordering::Relaxed);
        let spec = JobSpec::new(Arc::clone(problem) as SharedProblem, seed)
            .with_options(options.clone())
            .on_backend("simulated-annealing");
        session.submit(spec);
    }
    // Post-process each completion as it lands, overlapping with the
    // still-running remainder of the batch.
    let mut consumed = 0;
    for completion in session.completions() {
        consumed += postprocess(&completion.outcome).min(1);
    }
    assert_eq!(consumed, N_JOBS);
}

fn run_batched(service: &SolverService, problems: &[Arc<MqoProblem>]) {
    let options = opts();
    let batch: Vec<JobSpec> = problems
        .iter()
        .map(|p| {
            let seed = SEED.fetch_add(1, Ordering::Relaxed);
            JobSpec::new(Arc::clone(p) as SharedProblem, seed)
                .with_options(options.clone())
                .on_backend("simulated-annealing")
        })
        .collect();
    // The synchronous wrapper only hands results back once the whole batch
    // resolved; post-processing is serialized behind the slowest job.
    let outcomes = service.run_batch(batch);
    let consumed: usize = outcomes.iter().map(|o| postprocess(o).min(1)).sum();
    assert_eq!(consumed, N_JOBS);
}

fn bench_streaming_completions(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/streaming") {
        return;
    }
    let problems = workload();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let service =
        SolverService::new(ServiceConfig { workers, cache_capacity: 8, ..Default::default() });

    let mut group = c.benchmark_group("runtime/streaming");
    group.sample_size(10);
    group.bench_function("run_batch_then_decode", |b| b.iter(|| run_batched(&service, &problems)));
    group.bench_function("session_stream_decode", |b| {
        b.iter(|| run_streaming(&service, &problems));
    });
    group.finish();

    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        run_batched(&service, &problems);
    }
    let batched = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..reps {
        run_streaming(&service, &problems);
    }
    let streaming = t1.elapsed().as_secs_f64();
    println!(
        "runtime/streaming: {:.2}x ({} jobs/batch, {} workers, batch {:.3}s vs stream {:.3}s)",
        batched / streaming,
        N_JOBS,
        workers,
        batched / reps as f64,
        streaming / reps as f64
    );
}

fn bench_cache_hit_path(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/cache") {
        return;
    }
    let problems = workload();
    let service = SolverService::new(ServiceConfig {
        workers: 2,
        cache_capacity: 1024,
        ..Default::default()
    });
    let options = opts();
    // Warm the cache once with a fixed seed, then measure pure hits.
    let batch: Vec<JobSpec> = problems
        .iter()
        .map(|p| JobSpec::new(Arc::clone(p) as SharedProblem, 42).with_options(options.clone()))
        .collect();
    let warm = service.run_batch(batch.clone());
    assert!(warm.iter().all(|o| o.is_ok()));

    let mut group = c.benchmark_group("runtime/cache");
    group.sample_size(10);
    group.bench_function("hit_batch", |b| {
        b.iter(|| {
            let outcomes = service.run_batch(batch.clone());
            assert!(outcomes.iter().all(|o| o.as_ref().is_ok_and(|r| r.from_cache)));
        });
    });
    group.finish();
}

/// High-priority jobs sustaining the flood in the fairness mix.
const FAIR_HIGH_JOBS: usize = 200;
/// Low-priority jobs drowning in it (submitted after the first few Highs).
const FAIR_LOW_JOBS: usize = 4;

/// Low-lane latency stats of one starved-mix run, in seconds.
struct FairnessNumbers {
    strict_mean: f64,
    strict_p99: f64,
    fair_mean: f64,
    fair_p99: f64,
}

/// Stashed by `bench_fairness` for `bench_compile_once`'s JSON writer.
static FAIRNESS: OnceLock<FairnessNumbers> = OnceLock::new();

/// A single fast-SA backend so each job costs tens of microseconds and the
/// mix exercises queueing, not solver effort.
fn fairness_registry() -> SolverRegistry {
    let mut reg = SolverRegistry::new();
    reg.register(Box::new(SaSolver {
        params: Some(SaParams { sweeps: 30, restarts: 1, ..SaParams::default() }),
    }));
    reg
}

/// Runs the starved-priority mix on a single worker under `policy` and
/// returns the per-job latencies (submit → completion, seconds) of the
/// Low-lane jobs. One session floods High traffic; a second session's few
/// Low jobs are submitted early and must survive it.
fn starved_mix(policy: SchedulerPolicy, problems: &[Arc<MqoProblem>]) -> Vec<f64> {
    let service = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig { workers: 1, cache_capacity: 8, scheduling: policy, ..Default::default() },
    );
    let options = opts();
    let high =
        service.session(SessionConfig { queue_capacity: FAIR_HIGH_JOBS + 1, ..Default::default() });
    let low =
        service.session(SessionConfig { queue_capacity: FAIR_LOW_JOBS + 1, ..Default::default() });
    let spec = |p: &Arc<MqoProblem>, priority: JobPriority| {
        JobSpec::new(Arc::clone(p) as SharedProblem, SEED.fetch_add(1, Ordering::Relaxed))
            .with_options(options.clone())
            .with_priority(priority)
            .on_backend("simulated-annealing")
    };
    let mut low_ids = Vec::new();
    let mut low_submitted = Vec::new();
    for i in 0..FAIR_HIGH_JOBS {
        if i == 8 {
            // The worker is busy and a backlog exists: the Low jobs now
            // queue behind it and the flood keeps arriving after them.
            for j in 0..FAIR_LOW_JOBS {
                let handle = low.submit(spec(&problems[j % problems.len()], JobPriority::Low));
                low_ids.push(handle.id());
                low_submitted.push(Instant::now());
            }
        }
        high.submit(spec(&problems[i % problems.len()], JobPriority::High));
    }
    // Consume the Low session's finish-order stream so each latency is
    // stamped at completion time, while the flood is still being served.
    let mut latencies = vec![0.0; FAIR_LOW_JOBS];
    for completion in low.completions() {
        let now = Instant::now();
        let slot = low_ids.iter().position(|&id| id == completion.id).expect("a Low job");
        latencies[slot] = (now - low_submitted[slot]).as_secs_f64();
        assert!(completion.outcome.is_ok());
    }
    high.drain();
    latencies
}

/// p99 by nearest-rank; with a handful of jobs this is the max — exactly
/// the tail job the starved lane cares about.
fn p99(latencies: &[f64]) -> f64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn mean(latencies: &[f64]) -> f64 {
    latencies.iter().sum::<f64>() / latencies.len().max(1) as f64
}

fn bench_fairness(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/fairness") {
        return;
    }
    let problems = workload();

    let mut group = c.benchmark_group("runtime/fairness");
    group.sample_size(10);
    group.bench_function("strict_priority_mix", |b| {
        b.iter(|| starved_mix(SchedulerPolicy::StrictPriority, &problems));
    });
    group.bench_function("fair_share_mix", |b| {
        b.iter(|| starved_mix(SchedulerPolicy::FairShare, &problems));
    });
    group.finish();

    // Headline numbers: one measured mix per policy, Low-lane tail latency.
    let strict = starved_mix(SchedulerPolicy::StrictPriority, &problems);
    let fair = starved_mix(SchedulerPolicy::FairShare, &problems);
    let numbers = FairnessNumbers {
        strict_mean: mean(&strict),
        strict_p99: p99(&strict),
        fair_mean: mean(&fair),
        fair_p99: p99(&fair),
    };
    println!(
        "runtime/fairness: low-lane p99 {:.1} ms (strict) -> {:.1} ms (fair-share), {:.2}x tail \
         cut ({} high / {} low jobs, 1 worker; means {:.1} -> {:.1} ms)",
        numbers.strict_p99 * 1e3,
        numbers.fair_p99 * 1e3,
        numbers.strict_p99 / numbers.fair_p99.max(1e-12),
        FAIR_HIGH_JOBS,
        FAIR_LOW_JOBS,
        numbers.strict_mean * 1e3,
        numbers.fair_mean * 1e3,
    );
    let _ = FAIRNESS.set(numbers);
}

/// Jobs per measured batch in the observability-overhead comparison.
const OBS_JOBS: usize = 8;

/// Measured tracing overhead of one run, stashed by `bench_observability`
/// for `bench_compile_once`'s JSON writer.
struct ObservabilityNumbers {
    traced_seconds: f64,
    disabled_seconds: f64,
    overhead_pct: f64,
}

static OBSERVABILITY: OnceLock<ObservabilityNumbers> = OnceLock::new();

/// A service over the 4-backend race registry with the given trace
/// configuration; everything else identical between the two under test.
fn obs_service(q: &QuboModel, tracing: TraceConfig) -> SolverService {
    SolverService::with_registry(
        race_registry(q),
        ServiceConfig { workers: 2, cache_capacity: 8, tracing, ..Default::default() },
    )
}

/// One cache-miss batch (fresh seeds) of millisecond-scale solves; the
/// per-job work dwarfs the clock reads so the measured delta is the
/// tracing substrate itself, not timer noise.
fn obs_batch(service: &SolverService, problem: &SharedProblem) -> f64 {
    let batch: Vec<JobSpec> = (0..OBS_JOBS)
        .map(|_| {
            JobSpec::new(Arc::clone(problem), SEED.fetch_add(1, Ordering::Relaxed))
                .on_backend("simulated-annealing")
        })
        .collect();
    let t0 = Instant::now();
    let outcomes = service.run_batch(batch);
    assert!(outcomes.iter().all(|o| o.is_ok()));
    t0.elapsed().as_secs_f64()
}

fn bench_observability(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/observability") {
        return;
    }
    let q = qdm_bench::exp_meta::dense_acceptance_instance();
    let problem: SharedProblem = Arc::new(DenseProblem { qubo: q.clone() });
    let traced = obs_service(&q, TraceConfig::Ring);
    let disabled = obs_service(&q, TraceConfig::Disabled);

    let mut group = c.benchmark_group("runtime/observability");
    group.sample_size(10);
    group.bench_function("traced_batch", |b| b.iter(|| obs_batch(&traced, &problem)));
    group.bench_function("disabled_batch", |b| b.iter(|| obs_batch(&disabled, &problem)));
    group.finish();

    // Headline overhead: alternating reps so drift hits both services
    // equally, medians so a single descheduled batch cannot tip the gate.
    obs_batch(&traced, &problem);
    obs_batch(&disabled, &problem);
    let reps = 9;
    let mut traced_samples = Vec::with_capacity(reps);
    let mut disabled_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        traced_samples.push(obs_batch(&traced, &problem));
        disabled_samples.push(obs_batch(&disabled, &problem));
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let traced_seconds = median(traced_samples);
    let disabled_seconds = median(disabled_samples);
    let overhead_pct = (traced_seconds - disabled_seconds) / disabled_seconds * 100.0;
    println!(
        "runtime/observability: {overhead_pct:+.2}% tracing overhead ({OBS_JOBS} jobs/batch, \
         traced {:.3} ms vs disabled {:.3} ms medians over {reps} alternating reps)",
        traced_seconds * 1e3,
        disabled_seconds * 1e3,
    );
    assert!(
        overhead_pct < 5.0,
        "tracing overhead gate: {overhead_pct:.2}% >= 5% (traced {traced_seconds:.6}s vs \
         disabled {disabled_seconds:.6}s)"
    );
    let _ =
        OBSERVABILITY.set(ObservabilityNumbers { traced_seconds, disabled_seconds, overhead_pct });
}

/// Shards in the cluster benches (each single-worker, so the cluster and
/// the single service compare at equal total worker count).
const CLUSTER_SHARDS: usize = 4;
/// Jobs per measured batch in the cluster throughput comparison.
const CLUSTER_JOBS: usize = 32;
/// High-priority flood size in the cluster low-lane tail comparison.
const CLUSTER_HIGH_JOBS: usize = 64;
/// Low-priority jobs surviving the flood.
const CLUSTER_LOW_JOBS: usize = 4;
/// Jobs offered in the saturation run that records the shed rate.
const SATURATION_JOBS: usize = 200;

/// Headline numbers of one cluster run, stashed by `bench_cluster` for
/// `bench_compile_once`'s JSON writer.
struct ClusterNumbers {
    cluster_seconds: f64,
    single_seconds: f64,
    cluster_low_p99: f64,
    single_low_p99: f64,
    saturation_shed: u64,
    shed_rate: f64,
}

static CLUSTER: OnceLock<ClusterNumbers> = OnceLock::new();

/// A 4-shard cluster over the fast-SA registry: same backend and total
/// worker count as `single_service`, split across independent shards.
fn bench_cluster_service() -> ClusterService {
    let registries = (0..CLUSTER_SHARDS).map(|_| fairness_registry()).collect();
    ClusterService::with_registries(
        registries,
        ClusterConfig {
            service: ServiceConfig { workers: 1, cache_capacity: 8, ..Default::default() },
            ..Default::default()
        },
    )
}

fn single_service() -> SolverService {
    SolverService::with_registry(
        fairness_registry(),
        ServiceConfig { workers: CLUSTER_SHARDS, cache_capacity: 8, ..Default::default() },
    )
}

/// One cache-miss batch through the cluster front-end, seconds per batch.
fn cluster_batch(cluster: &ClusterService, problems: &[Arc<MqoProblem>]) -> f64 {
    let options = opts();
    let session = cluster
        .session("bench", SessionConfig { queue_capacity: CLUSTER_JOBS, ..Default::default() });
    let t0 = Instant::now();
    let handles: Vec<JobHandle> = (0..CLUSTER_JOBS)
        .map(|i| {
            let spec = JobSpec::new(
                Arc::clone(&problems[i % problems.len()]) as SharedProblem,
                SEED.fetch_add(1, Ordering::Relaxed),
            )
            .with_options(options.clone())
            .on_backend("simulated-annealing");
            session.submit(spec).expect("throughput run has no admission limits")
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().is_ok());
    }
    t0.elapsed().as_secs_f64()
}

/// The same batch through one service with the same total worker count.
fn single_batch(service: &SolverService, problems: &[Arc<MqoProblem>]) -> f64 {
    let options = opts();
    let session =
        service.session(SessionConfig { queue_capacity: CLUSTER_JOBS, ..Default::default() });
    let t0 = Instant::now();
    let handles: Vec<JobHandle> = (0..CLUSTER_JOBS)
        .map(|i| {
            let spec = JobSpec::new(
                Arc::clone(&problems[i % problems.len()]) as SharedProblem,
                SEED.fetch_add(1, Ordering::Relaxed),
            )
            .with_options(options.clone())
            .on_backend("simulated-annealing");
            session.submit(spec)
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().is_ok());
    }
    t0.elapsed().as_secs_f64()
}

/// Low-lane latencies under a High flood on the cluster: the cluster
/// analogue of `starved_mix`, with the flood spread over the shards by
/// content routing.
fn cluster_starved(cluster: &ClusterService, problems: &[Arc<MqoProblem>]) -> Vec<f64> {
    let options = opts();
    let high = cluster.session(
        "high",
        SessionConfig { queue_capacity: CLUSTER_HIGH_JOBS + 1, ..Default::default() },
    );
    let low = cluster.session(
        "low",
        SessionConfig { queue_capacity: CLUSTER_LOW_JOBS + 1, ..Default::default() },
    );
    let spec = |p: &Arc<MqoProblem>, priority: JobPriority| {
        JobSpec::new(Arc::clone(p) as SharedProblem, SEED.fetch_add(1, Ordering::Relaxed))
            .with_options(options.clone())
            .with_priority(priority)
            .on_backend("simulated-annealing")
    };
    let mut low_ids = Vec::new();
    let mut low_submitted = Vec::new();
    for i in 0..CLUSTER_HIGH_JOBS {
        if i == 8 {
            for j in 0..CLUSTER_LOW_JOBS {
                let handle = low
                    .submit(spec(&problems[j % problems.len()], JobPriority::Low))
                    .expect("admitted");
                low_ids.push(handle.id());
                low_submitted.push(Instant::now());
            }
        }
        high.submit(spec(&problems[i % problems.len()], JobPriority::High)).expect("admitted");
    }
    let mut latencies = vec![0.0; CLUSTER_LOW_JOBS];
    for completion in low.completions() {
        let now = Instant::now();
        let slot = low_ids.iter().position(|&id| id == completion.id).expect("a Low job");
        latencies[slot] = (now - low_submitted[slot]).as_secs_f64();
        assert!(completion.outcome.is_ok());
    }
    high.drain();
    latencies
}

/// The same starved mix on one service with the same total worker count.
fn single_starved(service: &SolverService, problems: &[Arc<MqoProblem>]) -> Vec<f64> {
    let options = opts();
    let high = service
        .session(SessionConfig { queue_capacity: CLUSTER_HIGH_JOBS + 1, ..Default::default() });
    let low = service
        .session(SessionConfig { queue_capacity: CLUSTER_LOW_JOBS + 1, ..Default::default() });
    let spec = |p: &Arc<MqoProblem>, priority: JobPriority| {
        JobSpec::new(Arc::clone(p) as SharedProblem, SEED.fetch_add(1, Ordering::Relaxed))
            .with_options(options.clone())
            .with_priority(priority)
            .on_backend("simulated-annealing")
    };
    let mut low_ids = Vec::new();
    let mut low_submitted = Vec::new();
    for i in 0..CLUSTER_HIGH_JOBS {
        if i == 8 {
            for j in 0..CLUSTER_LOW_JOBS {
                let handle = low.submit(spec(&problems[j % problems.len()], JobPriority::Low));
                low_ids.push(handle.id());
                low_submitted.push(Instant::now());
            }
        }
        high.submit(spec(&problems[i % problems.len()], JobPriority::High));
    }
    let mut latencies = vec![0.0; CLUSTER_LOW_JOBS];
    for completion in low.completions() {
        let now = Instant::now();
        let slot = low_ids.iter().position(|&id| id == completion.id).expect("a Low job");
        latencies[slot] = (now - low_submitted[slot]).as_secs_f64();
        assert!(completion.outcome.is_ok());
    }
    high.drain();
    latencies
}

fn bench_cluster(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/cluster") {
        return;
    }
    let problems = workload();
    let cluster = bench_cluster_service();
    let single = single_service();

    let mut group = c.benchmark_group("runtime/cluster");
    group.sample_size(10);
    group.bench_function(format!("cluster_{CLUSTER_SHARDS}x1_batch"), |b| {
        b.iter(|| cluster_batch(&cluster, &problems));
    });
    group.bench_function(format!("single_{CLUSTER_SHARDS}w_batch"), |b| {
        b.iter(|| single_batch(&single, &problems));
    });
    group.finish();

    // Headline numbers: aggregate throughput parity and the Low-lane tail
    // under a High flood, cluster vs single service at equal total workers.
    let reps = 5;
    let cluster_seconds =
        (0..reps).map(|_| cluster_batch(&cluster, &problems)).sum::<f64>() / reps as f64;
    let single_seconds =
        (0..reps).map(|_| single_batch(&single, &problems)).sum::<f64>() / reps as f64;
    let cluster_low_p99 = p99(&cluster_starved(&cluster, &problems));
    let single_low_p99 = p99(&single_starved(&single, &problems));
    println!(
        "runtime/cluster: {CLUSTER_SHARDS}x1-shard batch {:.3}s vs 1x{CLUSTER_SHARDS}-worker \
         {:.3}s ({:.2}x parity, {CLUSTER_JOBS} jobs/batch); low-lane p99 {:.1} ms vs {:.1} ms",
        cluster_seconds,
        single_seconds,
        cluster_seconds / single_seconds.max(1e-12),
        cluster_low_p99 * 1e3,
        single_low_p99 * 1e3,
    );

    // Saturation: a tight token bucket plus a queue-depth watermark against
    // a burst far above capacity — the shed rate is the fraction of offered
    // jobs turned away with a retry hint instead of queued unboundedly.
    let saturated = ClusterService::with_registries(
        (0..CLUSTER_SHARDS).map(|_| fairness_registry()).collect(),
        ClusterConfig {
            service: ServiceConfig { workers: 1, cache_capacity: 8, ..Default::default() },
            admission: AdmissionConfig::default().with_default_bucket(TokenBucketConfig {
                capacity: 32.0,
                refill_per_second: 200.0,
            }),
            shed_watermark: Some(16),
            ..Default::default()
        },
    );
    let options = opts();
    let session = saturated
        .session("burst", SessionConfig { queue_capacity: SATURATION_JOBS, ..Default::default() });
    let mut handles = Vec::new();
    for i in 0..SATURATION_JOBS {
        let spec = JobSpec::new(
            Arc::clone(&problems[i % problems.len()]) as SharedProblem,
            SEED.fetch_add(1, Ordering::Relaxed),
        )
        .with_options(options.clone())
        .on_backend("simulated-annealing");
        if let Ok(handle) = session.submit(spec) {
            handles.push(handle);
        }
    }
    for handle in &handles {
        assert!(handle.wait().is_ok());
    }
    let saturation_shed = saturated.report().jobs_shed;
    let shed_rate = saturation_shed as f64 / SATURATION_JOBS as f64;
    println!(
        "runtime/cluster saturation: {saturation_shed}/{SATURATION_JOBS} shed ({:.1}% of offered \
         load) under a 32-token bucket + depth-16 watermark",
        shed_rate * 100.0,
    );

    let _ = CLUSTER.set(ClusterNumbers {
        cluster_seconds,
        single_seconds,
        cluster_low_p99,
        single_low_p99,
        saturation_shed,
        shed_rate,
    });
}

/// Jobs per measured batch in the robustness benches.
const ROBUST_JOBS: usize = 16;

/// Headline numbers of one robustness run, stashed by `bench_robustness`
/// for `bench_compile_once`'s JSON writer.
struct RobustnessNumbers {
    clean_seconds: f64,
    retry_seconds: f64,
    retry_overhead_pct: f64,
    trip_seconds: f64,
    recover_seconds: f64,
    open_per_job: f64,
    no_breaker_per_job: f64,
    healthy_seconds: f64,
    failover_seconds: f64,
    failover_penalty: f64,
}

static ROBUSTNESS: OnceLock<RobustnessNumbers> = OnceLock::new();

/// Minimal pick-one problem for the dead-backend scenario. Small `n` keeps
/// the `exact` backend top-ranked by prior cost, and — failing every
/// attempt — it never records telemetry that would demote it, so the
/// faulted routing sequence is the same on every run.
struct PickOne {
    costs: Vec<f64>,
}

impl DmProblem for PickOne {
    fn name(&self) -> String {
        format!("bench-pick-{}", self.costs.len())
    }
    fn n_vars(&self) -> usize {
        self.costs.len()
    }
    fn to_qubo(&self) -> QuboModel {
        let mut q = QuboModel::new(self.costs.len());
        for (i, &c) in self.costs.iter().enumerate() {
            q.add_linear(i, c);
        }
        let vars: Vec<usize> = (0..self.costs.len()).collect();
        let weight = qdm_qubo::penalty::penalty_weight(&q);
        qdm_qubo::penalty::exactly_one(&mut q, &vars, weight);
        q
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let ones = bits.iter().filter(|&&b| b).count();
        Decoded { feasible: ones == 1, objective: 0.0, summary: format!("{ones} set") }
    }
}

fn pick(n: usize) -> SharedProblem {
    Arc::new(PickOne { costs: (0..n).map(|i| ((i * 5) % 11) as f64 + 0.5).collect() })
}

/// Fails every other `Solve` attempt: each job's first attempt errors and
/// its retry succeeds, so a batch through this injector pays the full
/// retry path — fault, child span, re-rank, second attempt — once per job.
struct EveryOtherSolveFails(AtomicU64);

impl FaultInjector for EveryOtherSolveFails {
    fn inject(&self, site: FaultSite, _backend: Option<&str>) -> Option<FaultAction> {
        if site != FaultSite::Solve {
            return None;
        }
        self.0
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(2)
            .then(|| FaultAction::Error("bench: transient backend failure".into()))
    }
}

/// Zero-backoff retries so the benches measure the retry machinery, not
/// configured sleeps.
fn instant_retries() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff_base: std::time::Duration::ZERO,
        backoff_cap: std::time::Duration::ZERO,
    }
}

/// One cache-miss batch (fresh seeds, Auto routing), seconds per batch.
fn robust_batch(service: &SolverService, problems: &[Arc<MqoProblem>]) -> f64 {
    let options = opts();
    let batch: Vec<JobSpec> = (0..ROBUST_JOBS)
        .map(|i| {
            JobSpec::new(
                Arc::clone(&problems[i % problems.len()]) as SharedProblem,
                SEED.fetch_add(1, Ordering::Relaxed),
            )
            .with_options(options.clone())
        })
        .collect();
    let t0 = Instant::now();
    let outcomes = service.run_batch(batch);
    assert!(outcomes.iter().all(|o| o.is_ok()));
    t0.elapsed().as_secs_f64()
}

/// One scripted dead-backend run over the standard registry: the top-ranked
/// `exact` backend errors on every attempt. Returns the latency of the job
/// that discovers the outage (and, with breakers on, trips one), the wall
/// time from first submission until the service is serving normally again,
/// the steady-state per-job latency after that, and how many retries the
/// whole run paid.
fn dead_backend_run(breaker: Option<BreakerConfig>) -> (f64, f64, f64, u64) {
    let plan: Arc<dyn FaultInjector> = Arc::new(FaultPlan::new().fail_backend(
        "exact",
        FaultWhen::Always,
        FaultAction::Error("bench: backend down".into()),
    ));
    let service = SolverService::new(ServiceConfig {
        workers: 1,
        cache_capacity: 4 * ROBUST_JOBS,
        injector: Some(plan),
        retry: instant_retries(),
        breaker,
        ..Default::default()
    });
    let t0 = Instant::now();
    let first = service.run(JobSpec::new(pick(6), SEED.fetch_add(1, Ordering::Relaxed)));
    assert!(first.is_ok(), "the tripping job must still resolve via fallback: {first:?}");
    let trip = t0.elapsed().as_secs_f64();
    let second = service.run(JobSpec::new(pick(6), SEED.fetch_add(1, Ordering::Relaxed)));
    assert!(second.is_ok());
    // Recovered: the first post-trip success has landed and every further
    // job takes the steady-state path measured below.
    let recover = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..ROBUST_JOBS {
        let outcome = service.run(JobSpec::new(pick(6), SEED.fetch_add(1, Ordering::Relaxed)));
        assert!(outcome.is_ok());
    }
    let steady = t1.elapsed().as_secs_f64() / ROBUST_JOBS as f64;
    (trip, recover, steady, service.report().jobs_retried)
}

/// Health probe reporting one shard permanently dead.
struct DeadShard(usize);

impl HealthProbe for DeadShard {
    fn is_healthy(&self, shard: usize) -> bool {
        shard != self.0
    }
}

fn bench_robustness(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/robustness") {
        return;
    }
    let problems = workload();

    // Retry-path overhead: the same single-worker fast-SA service, clean vs
    // an injector that fails every job's first solve attempt.
    let clean = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig { workers: 1, cache_capacity: 8, ..Default::default() },
    );
    let retrying = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            injector: Some(Arc::new(EveryOtherSolveFails(AtomicU64::new(0)))),
            retry: instant_retries(),
            ..Default::default()
        },
    );
    // Failover throughput: the 4x1 cluster with one shard reported dead —
    // its arcs re-route to healthy successors at submit time.
    let healthy = bench_cluster_service();
    let dead = ClusterService::with_registries(
        (0..CLUSTER_SHARDS).map(|_| fairness_registry()).collect(),
        ClusterConfig {
            service: ServiceConfig { workers: 1, cache_capacity: 8, ..Default::default() },
            health_probe: Some(Arc::new(DeadShard(0))),
            ..Default::default()
        },
    );

    let mut group = c.benchmark_group("runtime/robustness");
    group.sample_size(10);
    group.bench_function("clean_batch", |b| b.iter(|| robust_batch(&clean, &problems)));
    group
        .bench_function("retry_every_job_batch", |b| b.iter(|| robust_batch(&retrying, &problems)));
    group.bench_function("failover_one_dead_shard_batch", |b| {
        b.iter(|| cluster_batch(&dead, &problems));
    });
    group.finish();

    // Headline 1: per-batch retry overhead, clean vs one retry per job.
    let reps = 5;
    let clean_seconds =
        (0..reps).map(|_| robust_batch(&clean, &problems)).sum::<f64>() / reps as f64;
    let retry_seconds =
        (0..reps).map(|_| robust_batch(&retrying, &problems)).sum::<f64>() / reps as f64;
    let retry_overhead_pct = (retry_seconds - clean_seconds) / clean_seconds.max(1e-12) * 100.0;
    println!(
        "runtime/robustness retry: {retry_overhead_pct:+.1}% batch overhead with one retry per \
         job ({ROBUST_JOBS} jobs/batch, clean {:.3} ms vs retrying {:.3} ms)",
        clean_seconds * 1e3,
        retry_seconds * 1e3,
    );

    // Headline 2: time-to-recover after a backend dies, breakers on vs off.
    // With a breaker (threshold 1, long cooldown) only the tripping job
    // pays a retry; without one every job re-discovers the dead backend.
    let (trip_seconds, recover_seconds, open_per_job, breaker_retried) =
        dead_backend_run(Some(BreakerConfig {
            failure_threshold: 1,
            cooldown: std::time::Duration::from_secs(3600),
            clock: None,
        }));
    let (_, _, no_breaker_per_job, no_breaker_retried) = dead_backend_run(None);
    assert!(breaker_retried >= 1 && no_breaker_retried >= 1, "the dead backend must be tried");
    println!(
        "runtime/robustness breaker: trip {:.3} ms, recovered by {:.3} ms; steady-state {:.1} \
         µs/job open-breaker vs {:.1} µs/job retrying ({:.2}x, {} vs {} retries paid)",
        trip_seconds * 1e3,
        recover_seconds * 1e3,
        open_per_job * 1e6,
        no_breaker_per_job * 1e6,
        no_breaker_per_job / open_per_job.max(1e-12),
        breaker_retried,
        no_breaker_retried,
    );

    // Headline 3: failover throughput, all-healthy vs one dead shard at
    // equal offered load (the dead shard's workers are lost, its keys
    // spread over the survivors).
    let healthy_seconds =
        (0..reps).map(|_| cluster_batch(&healthy, &problems)).sum::<f64>() / reps as f64;
    let failover_seconds =
        (0..reps).map(|_| cluster_batch(&dead, &problems)).sum::<f64>() / reps as f64;
    let failover_penalty = failover_seconds / healthy_seconds.max(1e-12);
    let failovers = dead.report().failovers;
    println!(
        "runtime/robustness failover: {CLUSTER_SHARDS}x1 healthy {:.3}s vs one-dead-shard {:.3}s \
         ({failover_penalty:.2}x penalty, {CLUSTER_JOBS} jobs/batch, {failovers} submissions \
         re-routed)",
        healthy_seconds, failover_seconds,
    );

    let _ = ROBUSTNESS.set(RobustnessNumbers {
        clean_seconds,
        retry_seconds,
        retry_overhead_pct,
        trip_seconds,
        recover_seconds,
        open_per_job,
        no_breaker_per_job,
        healthy_seconds,
        failover_seconds,
        failover_penalty,
    });
}

/// Jobs per measured batch in the recovery benches.
const RECOVERY_JOBS: usize = 16;

/// Headline numbers of one recovery run, stashed by `bench_recovery` for
/// `bench_compile_once`'s JSON writer.
struct RecoveryNumbers {
    plain_batch_seconds: f64,
    journaled_batch_seconds: f64,
    journal_overhead_pct: f64,
    replay_seconds: f64,
    snapshot_entries: usize,
    snapshot_save_seconds: f64,
    snapshot_load_seconds: f64,
    plain_per_job: f64,
    checkpoint_per_job: f64,
    checkpoint_overhead_pct: f64,
    checkpoints_emitted: u64,
}

static RECOVERY: OnceLock<RecoveryNumbers> = OnceLock::new();

/// Checkpoint-subscribed probe that only counts emissions: what it prices
/// is the emission machinery itself (the best-assignment clone per restart
/// boundary), not any consumer.
struct CountCheckpoints(AtomicU64);

impl StageProbe for CountCheckpoints {
    fn wants_checkpoints(&self) -> bool {
        true
    }
    fn on_checkpoint(&self, _checkpoint: &SolverCheckpoint) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// A journal pre-loaded with `RECOVERY_JOBS` unfinished submissions — the
/// backlog a crashed process leaves behind for `recover` to replay.
fn crashed_journal(problems: &[Arc<MqoProblem>]) -> MemoryJournal {
    let journal = MemoryJournal::new();
    for i in 0..RECOVERY_JOBS {
        let problem = &problems[i % problems.len()];
        journal.append(JournalEvent::Submitted(SubmittedRecord {
            job_id: i as u64,
            problem: problem.name(),
            qubo: problem.to_qubo(),
            options_bits: 0,
            priority: JobPriority::Normal,
            seed: 600_000 + i as u64,
            backend: BackendChoice::Auto,
            tenant: None,
            shard: None,
        }));
    }
    journal
}

/// Replays the whole crashed backlog on a fresh service, seconds per
/// backlog. The service carries no journal of its own, so the backlog
/// stays unfinished and every call replays the same work.
fn replay_batch(journal: &MemoryJournal) -> f64 {
    let service = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig { workers: 1, cache_capacity: 2 * RECOVERY_JOBS, ..Default::default() },
    );
    let t0 = Instant::now();
    let handles = service.recover(journal);
    assert_eq!(handles.len(), RECOVERY_JOBS);
    for handle in &handles {
        assert!(handle.wait().is_ok());
    }
    t0.elapsed().as_secs_f64()
}

/// One cache-miss batch with an optional per-job probe, seconds per batch.
fn probed_batch(
    service: &SolverService,
    problems: &[Arc<MqoProblem>],
    probe: Option<Arc<dyn StageProbe>>,
) -> f64 {
    let mut options = opts();
    options.probe = probe;
    let batch: Vec<JobSpec> = (0..RECOVERY_JOBS)
        .map(|i| {
            JobSpec::new(
                Arc::clone(&problems[i % problems.len()]) as SharedProblem,
                SEED.fetch_add(1, Ordering::Relaxed),
            )
            .with_options(options.clone())
            .on_backend("simulated-annealing")
        })
        .collect();
    let t0 = Instant::now();
    let outcomes = service.run_batch(batch);
    assert!(outcomes.iter().all(|o| o.is_ok()));
    t0.elapsed().as_secs_f64()
}

fn bench_recovery(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/recovery") {
        return;
    }
    let problems = workload();

    let plain = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig { workers: 1, cache_capacity: 8, ..Default::default() },
    );
    let journaled = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            journal: Some(Arc::new(MemoryJournal::new()) as _),
            ..Default::default()
        },
    );
    let backlog = crashed_journal(&problems);

    let mut group = c.benchmark_group("runtime/recovery");
    group.sample_size(10);
    group.bench_function("plain_batch", |b| b.iter(|| robust_batch(&plain, &problems)));
    group.bench_function("journaled_batch", |b| b.iter(|| robust_batch(&journaled, &problems)));
    group.bench_function("replay_crashed_backlog", |b| b.iter(|| replay_batch(&backlog)));
    group.finish();

    // Headline 1: what the WAL costs on the clean path (every job appends
    // a Submitted record — QUBO serialization included — and a Completed
    // one).
    let reps = 5;
    let plain_batch_seconds =
        (0..reps).map(|_| robust_batch(&plain, &problems)).sum::<f64>() / reps as f64;
    let journaled_batch_seconds =
        (0..reps).map(|_| robust_batch(&journaled, &problems)).sum::<f64>() / reps as f64;
    let journal_overhead_pct =
        (journaled_batch_seconds - plain_batch_seconds) / plain_batch_seconds.max(1e-12) * 100.0;
    println!(
        "runtime/recovery journal: {journal_overhead_pct:+.1}% batch overhead for the WAL \
         ({RECOVERY_JOBS} jobs/batch, plain {:.3} ms vs journaled {:.3} ms)",
        plain_batch_seconds * 1e3,
        journaled_batch_seconds * 1e3,
    );

    // Headline 2: replay throughput — journal scan plus full re-solve of
    // the crashed backlog.
    let replay_seconds = (0..reps).map(|_| replay_batch(&backlog)).sum::<f64>() / reps as f64;
    println!(
        "runtime/recovery replay: {RECOVERY_JOBS}-job crashed backlog replayed in {:.3} ms \
         ({:.0} jobs/s)",
        replay_seconds * 1e3,
        RECOVERY_JOBS as f64 / replay_seconds.max(1e-12),
    );

    // Headline 3: snapshot save/load latency on a warm solution store.
    let store = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig { workers: 1, cache_capacity: 2 * RECOVERY_JOBS, ..Default::default() },
    );
    for (i, problem) in problems.iter().enumerate() {
        let spec = JobSpec::new(Arc::clone(problem) as SharedProblem, 700_000 + i as u64)
            .with_options(opts())
            .on_backend("simulated-annealing");
        store.run(spec).expect("store warm-up job solves");
    }
    let snap_reps = 50;
    let t0 = Instant::now();
    let mut snapshot = store.save_snapshot();
    for _ in 1..snap_reps {
        snapshot = store.save_snapshot();
    }
    let snapshot_save_seconds = t0.elapsed().as_secs_f64() / snap_reps as f64;
    let snapshot_entries = snapshot.len();
    let loader = SolverService::with_registry(
        fairness_registry(),
        ServiceConfig { workers: 1, cache_capacity: 2 * RECOVERY_JOBS, ..Default::default() },
    );
    let t1 = Instant::now();
    for _ in 0..snap_reps {
        loader.load_snapshot(&snapshot);
    }
    let snapshot_load_seconds = t1.elapsed().as_secs_f64() / snap_reps as f64;
    println!(
        "runtime/recovery snapshot: {snapshot_entries} entries, save {:.1} µs, load {:.1} µs",
        snapshot_save_seconds * 1e6,
        snapshot_load_seconds * 1e6,
    );

    // Headline 4: checkpoint emission overhead on the solve path, gated
    // <5% — resumability must stay close to free. Alternating reps so
    // drift hits both modes equally, medians so one descheduled batch
    // cannot tip the gate (same discipline as the observability gate).
    let counter = Arc::new(CountCheckpoints(AtomicU64::new(0)));
    probed_batch(&plain, &problems, None);
    probed_batch(&plain, &problems, Some(Arc::clone(&counter) as _));
    let cp_reps = 9;
    let mut plain_samples = Vec::with_capacity(cp_reps);
    let mut checkpoint_samples = Vec::with_capacity(cp_reps);
    for _ in 0..cp_reps {
        plain_samples.push(probed_batch(&plain, &problems, None));
        checkpoint_samples.push(probed_batch(&plain, &problems, Some(Arc::clone(&counter) as _)));
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let plain_per_job = median(plain_samples) / RECOVERY_JOBS as f64;
    let checkpoint_per_job = median(checkpoint_samples) / RECOVERY_JOBS as f64;
    let checkpoint_overhead_pct =
        (checkpoint_per_job - plain_per_job) / plain_per_job.max(1e-12) * 100.0;
    let checkpoints_emitted = counter.0.load(Ordering::Relaxed);
    assert!(
        checkpoints_emitted >= (cp_reps * RECOVERY_JOBS) as u64,
        "every probed job must emit at least one checkpoint"
    );
    println!(
        "runtime/recovery checkpoint: {checkpoint_overhead_pct:+.1}% per-job overhead with \
         checkpoints on ({checkpoints_emitted} emitted; {:.1} µs/job vs {:.1} µs/job medians \
         over {cp_reps} alternating reps)",
        plain_per_job * 1e6,
        checkpoint_per_job * 1e6,
    );
    assert!(
        checkpoint_overhead_pct < 5.0,
        "checkpoint overhead gate: {checkpoint_overhead_pct:.2}% >= 5% \
         (plain {plain_per_job:.9}s/job vs checkpointed {checkpoint_per_job:.9}s/job)"
    );

    let _ = RECOVERY.set(RecoveryNumbers {
        plain_batch_seconds,
        journaled_batch_seconds,
        journal_overhead_pct,
        replay_seconds,
        snapshot_entries,
        snapshot_save_seconds,
        snapshot_load_seconds,
        plain_per_job,
        checkpoint_per_job,
        checkpoint_overhead_pct,
        checkpoints_emitted,
    });
}

/// Problem sizes in the cost-model prediction sweep: n ≥ 10 so per-state
/// solver work dominates the fixed dispatch overhead the estimators also
/// model.
const COST_SIZES: [usize; 3] = [10, 12, 14];
/// One backend per estimator family: exhaustive enumeration, sweep-based
/// annealing, and gate-model evolution.
const COST_BACKENDS: [&str; 3] = ["exact", "simulated-annealing", "adiabatic-evolution"];
/// Job size of the race-loser-waste comparison.
const COST_RACE_N: usize = 14;

/// Headline numbers of one cost-model run, stashed by `bench_cost` for
/// `bench_compile_once`'s JSON writer.
struct CostNumbers {
    prediction_solves: usize,
    median_error: f64,
    max_error: f64,
    ewma_waste_seconds: f64,
    cost_waste_seconds: f64,
}

static COST: OnceLock<CostNumbers> = OnceLock::new();

fn bench_cost(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/cost") {
        return;
    }
    let registry = SolverRegistry::standard();
    let service =
        SolverService::new(ServiceConfig { workers: 1, cache_capacity: 256, ..Default::default() });

    // The routing decision itself: one full-information ranking with the
    // calibrated model, against the EWMA-only baseline it replaced.
    let portfolio = PortfolioScheduler::new(registry.len());
    let race_shape = CostShape::from_n_vars(COST_RACE_N);
    let mut group = c.benchmark_group("runtime/cost");
    group.sample_size(10);
    group.bench_function("rank_costed", |b| {
        b.iter(|| {
            std::hint::black_box(portfolio.rank_costed(&registry, race_shape, |_| false, |_| 1.0))
        })
    });
    group.bench_function("rank_ewma_only", |b| {
        b.iter(|| std::hint::black_box(portfolio.rank_ewma_only(&registry, COST_RACE_N)))
    });
    group.finish();

    // Headline 1: predicted-vs-actual error across estimator families and
    // sizes. Two warm-up solves calibrate each backend's ratio EWMA, then
    // three measured solves score the prediction that was in force before
    // each observation updated it. The gate is the *median* error factor,
    // < 2x: the analytic curves plus a short calibration must land within
    // a factor of two of reality, while a single descheduled solve cannot
    // tip the gate.
    let model = CostModel::new(registry.len());
    let mut errors: Vec<f64> = Vec::new();
    for name in COST_BACKENDS {
        let idx = registry.find(name).expect("standard-registry backend");
        for n in COST_SIZES {
            let shape = CostShape::from_n_vars(n);
            let analytic = analytic_seconds(&registry.get(idx).spec, shape);
            for rep in 0..5 {
                let spec =
                    JobSpec::new(pick(n), SEED.fetch_add(1, Ordering::Relaxed)).on_backend(name);
                let actual = service.run(spec).expect("cost sweep job solves").report.seconds;
                if rep >= 2 {
                    let predicted = model.predict_seconds(idx, analytic);
                    errors.push((predicted / actual.max(1e-9)).max(actual / predicted));
                }
                model.observe(idx, analytic, actual);
            }
        }
    }
    errors.sort_by(|a, b| a.total_cmp(b));
    let prediction_solves = errors.len();
    let median_error = errors[prediction_solves / 2];
    let max_error = *errors.last().expect("sweep produced measurements");
    println!(
        "runtime/cost prediction: median {median_error:.2}x / max {max_error:.2}x error over \
         {prediction_solves} measured solves ({} families x {COST_SIZES:?} vars, 2 warm-up + 3 \
         measured each)",
        COST_BACKENDS.len(),
    );
    assert!(
        median_error < 2.0,
        "cost-model prediction gate: median error {median_error:.2}x >= 2x over \
         {prediction_solves} solves"
    );

    // Headline 2: race-loser waste. The EWMA-only baseline scores an
    // observed backend by its raw latency EWMA, however unrepresentative:
    // after a run of tiny 4-var exact solves (a few µs each) it still
    // believes the exact enumerator is the fastest backend at 14 vars and
    // races it — the losing participant burns ~2^14 states of wasted
    // work. The cost model extrapolates through the analytic curve
    // instead, so its top-2 stays in the sweep-based family and the
    // race's loser is cheap.
    let waste_portfolio = PortfolioScheduler::new(registry.len());
    let exact = registry.find("exact").expect("exact registered");
    let tiny = CostShape::from_n_vars(4);
    for _ in 0..6 {
        let spec = JobSpec::new(pick(4), SEED.fetch_add(1, Ordering::Relaxed)).on_backend("exact");
        let out = service.run(spec).expect("tiny exact job solves");
        waste_portfolio.record(&registry, exact, tiny, out.report.seconds, 0.0, true);
    }
    let ewma_pair = waste_portfolio.rank_ewma_only(&registry, COST_RACE_N)[..2].to_vec();
    let cost_pair =
        waste_portfolio.rank_costed(&registry, race_shape, |_| false, |_| 1.0)[..2].to_vec();
    // Median-of-3 pinned solves per participant; a pair's waste is every
    // participant's solve time except the fastest (the work a k=2 race
    // throws away).
    let solve_seconds = |idx: usize| -> f64 {
        let name = registry.get(idx).spec.name.clone();
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let spec = JobSpec::new(pick(COST_RACE_N), SEED.fetch_add(1, Ordering::Relaxed))
                    .on_backend(&name);
                service.run(spec).expect("race-waste job solves").report.seconds
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[1]
    };
    let pair_waste = |pair: &[usize]| -> f64 {
        let seconds: Vec<f64> = pair.iter().map(|&i| solve_seconds(i)).collect();
        seconds.iter().sum::<f64>() - seconds.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    let ewma_waste_seconds = pair_waste(&ewma_pair);
    let cost_waste_seconds = pair_waste(&cost_pair);
    let backend_name = |idx: usize| registry.get(idx).spec.name.clone();
    println!(
        "runtime/cost race waste: ewma-only picks [{}, {}] wasting {:.1} µs/race vs cost-model \
         [{}, {}] wasting {:.1} µs/race ({:.1}x cut, k=2, {COST_RACE_N} vars)",
        backend_name(ewma_pair[0]),
        backend_name(ewma_pair[1]),
        ewma_waste_seconds * 1e6,
        backend_name(cost_pair[0]),
        backend_name(cost_pair[1]),
        cost_waste_seconds * 1e6,
        ewma_waste_seconds / cost_waste_seconds.max(1e-12),
    );
    assert!(
        cost_waste_seconds <= ewma_waste_seconds,
        "cost-model routing must not waste more race work than the EWMA-only baseline \
         ({cost_waste_seconds:.6}s vs {ewma_waste_seconds:.6}s)"
    );

    let _ = COST.set(CostNumbers {
        prediction_solves,
        median_error,
        max_error,
        ewma_waste_seconds,
        cost_waste_seconds,
    });
}

/// The dense instance wrapped as a service-submittable problem.
struct DenseProblem {
    qubo: QuboModel,
}

impl DmProblem for DenseProblem {
    fn name(&self) -> String {
        "bench-compile-once-256".into()
    }
    fn n_vars(&self) -> usize {
        self.qubo.n_vars()
    }
    fn to_qubo(&self) -> QuboModel {
        self.qubo.clone()
    }
    fn decode(&self, bits: &[bool]) -> Decoded {
        let ones = bits.iter().filter(|&&b| b).count();
        Decoded { feasible: true, objective: 0.0, summary: format!("{ones} set") }
    }
}

/// A 4-backend registry with effort trimmed so the race-latency comparison
/// finishes in smoke-test time; the compile-amortization numbers are
/// measured on the raw compiles and independent of these parameters.
fn race_registry(q: &QuboModel) -> SolverRegistry {
    let sa = SaParams { sweeps: 60, restarts: 2, ..SaParams::scaled_to(q) };
    let sqa = SqaParams { replicas: 6, sweeps: 40, ..SqaParams::scaled_to(q) };
    let mut reg = SolverRegistry::new();
    reg.register(Box::new(SaSolver { params: Some(sa) }));
    reg.register(Box::new(SaParallelSolver { params: Some(sa), threads: None }));
    reg.register(Box::new(TabuSolver {
        params: Some(TabuParams { iterations: 400, restarts: 1, tenure: 10 }),
    }));
    reg.register(Box::new(SqaSolver { params: Some(sqa) }));
    reg
}

fn bench_compile_once(c: &mut Criterion) {
    if !criterion::filter_allows("runtime/compile_once") {
        return;
    }
    const RACE_K: usize = 4;
    let q = qdm_bench::exp_meta::dense_acceptance_instance();
    let compiled = q.compile();

    let mut group = c.benchmark_group("runtime/compile_once");
    group.sample_size(10);
    group.bench_function("compile", |b| b.iter(|| std::hint::black_box(q.compile())));
    group.bench_function("canonical_fingerprint_on_compiled", |b| {
        b.iter(|| std::hint::black_box(compiled.canonical_form().0))
    });
    group.finish();

    // What one cache-miss race job pays in compilation. Old scheme: the
    // fingerprint compiled, then each of the k racing backends compiled its
    // own CSR — (k + 1) compiles per job. Compile-once: exactly one, shared
    // through an Arc. Timed directly on real compiles so the printed ratio
    // is measured, not inferred.
    let time_per = |f: &mut dyn FnMut(), reps: usize| -> f64 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_secs_f64() * 1e9 / reps as f64
    };
    let per_stage_ns = time_per(
        &mut || {
            for _ in 0..(RACE_K + 1) {
                std::hint::black_box(q.compile());
            }
        },
        50,
    );
    let once_ns = time_per(
        &mut || {
            std::hint::black_box(q.compile());
        },
        50,
    );
    let amortization = per_stage_ns / once_ns;
    println!(
        "runtime/compile_once: {amortization:.2}x amortization (256 vars, {}-backend race: {} \
         compiles -> 1; {:.1} µs/job -> {:.1} µs/job)",
        RACE_K,
        RACE_K + 1,
        per_stage_ns / 1e3,
        once_ns / 1e3,
    );

    // Race-vs-best-single latency on a live service over the shared
    // compilation (fresh seeds per repetition: every job is a cache miss).
    // On a single-core runner the race serializes its participants, so the
    // ratio only drops below the participant-count there — the same caveat
    // as `runtime/speedup`.
    let problem: SharedProblem = Arc::new(DenseProblem { qubo: q.clone() });
    let service = SolverService::with_registry(
        race_registry(&q),
        ServiceConfig { workers: 1, cache_capacity: 8, ..Default::default() },
    );
    let ranked = PortfolioScheduler::new(service.registry().len()).rank(service.registry(), 256);
    let best_single = service.registry().get(ranked[0]).spec.name.clone();
    let reps = 3u64;
    let seed = AtomicU64::new(77_000_000);
    let t0 = Instant::now();
    for _ in 0..reps {
        let spec = JobSpec::new(Arc::clone(&problem), seed.fetch_add(1, Ordering::Relaxed))
            .on_backend(&best_single);
        service.run(spec).expect("single-backend job solves");
    }
    let single_seconds = t0.elapsed().as_secs_f64() / reps as f64;
    let t1 = Instant::now();
    for _ in 0..reps {
        let spec =
            JobSpec::new(Arc::clone(&problem), seed.fetch_add(1, Ordering::Relaxed)).racing(RACE_K);
        service.run(spec).expect("race job solves");
    }
    let race_seconds = t1.elapsed().as_secs_f64() / reps as f64;
    println!(
        "runtime/race: {RACE_K}-way race {race_seconds:.3}s vs best-single ({best_single}) \
         {single_seconds:.3}s ({:.2}x)",
        race_seconds / single_seconds,
    );

    // Machine-readable baseline next to BENCH_solvers.json; hand-rolled
    // because the serde shim has no serializer. The fairness block is
    // present when the `runtime/fairness` group ran in the same invocation.
    let fairness = match FAIRNESS.get() {
        Some(f) => format!(
            ",\n  \"fairness\": {{\"high_jobs\": {FAIR_HIGH_JOBS}, \"low_jobs\": \
             {FAIR_LOW_JOBS}, \"low_latency_seconds\": {{\"strict_mean\": {:.6}, \
             \"strict_p99\": {:.6}, \"fair_mean\": {:.6}, \"fair_p99\": {:.6}}}, \
             \"tail_cut\": {:.2}}}",
            f.strict_mean,
            f.strict_p99,
            f.fair_mean,
            f.fair_p99,
            f.strict_p99 / f.fair_p99.max(1e-12),
        ),
        None => String::new(),
    };
    let observability = match OBSERVABILITY.get() {
        Some(o) => format!(
            ",\n  \"observability\": {{\"jobs_per_batch\": {OBS_JOBS}, \"batch_seconds\": {{\
             \"traced\": {:.6}, \"disabled\": {:.6}}}, \"overhead_pct\": {:.2}, \
             \"gate_pct\": 5.0}}",
            o.traced_seconds, o.disabled_seconds, o.overhead_pct,
        ),
        None => String::new(),
    };
    let cluster = match CLUSTER.get() {
        Some(cl) => format!(
            ",\n  \"cluster\": {{\"shards\": {CLUSTER_SHARDS}, \"workers_per_shard\": 1, \
             \"jobs_per_batch\": {CLUSTER_JOBS}, \"batch_seconds\": {{\"cluster\": {:.6}, \
             \"single_service\": {:.6}}}, \"throughput_parity\": {:.2}, \
             \"low_p99_seconds\": {{\"cluster\": {:.6}, \"single_service\": {:.6}}}, \
             \"saturation\": {{\"offered\": {SATURATION_JOBS}, \"shed\": {}, \
             \"shed_rate\": {:.3}}}}}",
            cl.cluster_seconds,
            cl.single_seconds,
            cl.cluster_seconds / cl.single_seconds.max(1e-12),
            cl.cluster_low_p99,
            cl.single_low_p99,
            cl.saturation_shed,
            cl.shed_rate,
        ),
        None => String::new(),
    };
    let robustness = match ROBUSTNESS.get() {
        Some(r) => format!(
            ",\n  \"robustness\": {{\"jobs_per_batch\": {ROBUST_JOBS}, \"retry\": {{\
             \"clean_batch_seconds\": {:.6}, \"retry_batch_seconds\": {:.6}, \
             \"overhead_pct\": {:.2}}}, \"breaker\": {{\"trip_seconds\": {:.6}, \
             \"recover_seconds\": {:.6}, \"open_per_job_seconds\": {:.6}, \
             \"no_breaker_per_job_seconds\": {:.6}, \"retry_cut\": {:.2}}}, \
             \"failover\": {{\"shards\": {CLUSTER_SHARDS}, \"healthy_batch_seconds\": {:.6}, \
             \"one_dead_shard_batch_seconds\": {:.6}, \"penalty\": {:.2}}}}}",
            r.clean_seconds,
            r.retry_seconds,
            r.retry_overhead_pct,
            r.trip_seconds,
            r.recover_seconds,
            r.open_per_job,
            r.no_breaker_per_job,
            r.no_breaker_per_job / r.open_per_job.max(1e-12),
            r.healthy_seconds,
            r.failover_seconds,
            r.failover_penalty,
        ),
        None => String::new(),
    };
    let cost = match COST.get() {
        Some(cm) => format!(
            ",\n  \"cost\": {{\"prediction\": {{\"solves\": {}, \"median_error_factor\": {:.2}, \
             \"max_error_factor\": {:.2}, \"gate_error_factor\": 2.0}}, \
             \"race_waste_seconds\": {{\"ewma_only\": {:.6}, \"cost_model\": {:.6}}}, \
             \"waste_cut\": {:.2}}}",
            cm.prediction_solves,
            cm.median_error,
            cm.max_error,
            cm.ewma_waste_seconds,
            cm.cost_waste_seconds,
            cm.ewma_waste_seconds / cm.cost_waste_seconds.max(1e-12),
        ),
        None => String::new(),
    };
    let recovery = match RECOVERY.get() {
        Some(r) => format!(
            ",\n  \"recovery\": {{\"jobs_per_batch\": {RECOVERY_JOBS}, \"journal\": {{\
             \"plain_batch_seconds\": {:.6}, \"journaled_batch_seconds\": {:.6}, \
             \"overhead_pct\": {:.2}}}, \"replay\": {{\"jobs\": {RECOVERY_JOBS}, \
             \"seconds\": {:.6}, \"jobs_per_second\": {:.1}}}, \"snapshot\": {{\
             \"entries\": {}, \"save_seconds\": {:.6}, \"load_seconds\": {:.6}}}, \
             \"checkpoint\": {{\"emitted\": {}, \"plain_per_job_seconds\": {:.6}, \
             \"checkpoint_per_job_seconds\": {:.6}, \"overhead_pct\": {:.2}, \
             \"gate_pct\": 5.0}}}}",
            r.plain_batch_seconds,
            r.journaled_batch_seconds,
            r.journal_overhead_pct,
            r.replay_seconds,
            RECOVERY_JOBS as f64 / r.replay_seconds.max(1e-12),
            r.snapshot_entries,
            r.snapshot_save_seconds,
            r.snapshot_load_seconds,
            r.checkpoints_emitted,
            r.plain_per_job,
            r.checkpoint_per_job,
            r.checkpoint_overhead_pct,
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"runtime\",\n  \"instance\": {{\"n_vars\": 256, \"density\": 0.05, \
         \"n_interactions\": {m}}},\n  \"race_k\": {RACE_K},\n  \"compile_ns\": {{\
         \"per_solve\": {per_stage_ns:.0}, \"compile_once\": {once_ns:.0}}},\n  \
         \"compile_amortization\": {amortization:.2},\n  \"latency_seconds\": {{\
         \"race\": {race_seconds:.6}, \"best_single\": {single_seconds:.6}}}{fairness}\
         {observability}{cluster}{robustness}{cost}{recovery}\n}}\n",
        m = q.n_interactions(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("runtime/baseline written to BENCH_runtime.json"),
        Err(e) => println!("runtime/baseline NOT written ({e})"),
    }
}

criterion_group!(
    benches,
    bench_throughput,
    bench_streaming_completions,
    bench_cache_hit_path,
    bench_fairness,
    bench_observability,
    bench_cluster,
    bench_robustness,
    bench_cost,
    bench_recovery,
    bench_compile_once
);
criterion_main!(benches);
