//! Runtime-service throughput: a batch of independent MQO solves run (a)
//! sequentially through `run_pipeline` on one thread and (b) through the
//! `qdm-runtime` worker pool. Every job gets a fresh seed each iteration so
//! the result cache never short-circuits the work being measured; a third
//! bench measures the cache-hit path separately. On a multi-core runner the
//! pooled batch completes ≥ 2× faster than the sequential loop (the printed
//! `runtime/speedup` line reports the measured ratio).
//!
//! A fourth group compares synchronous `run_batch` against session
//! submission with `completions()` streaming: the streaming consumer starts
//! post-processing each result the moment it finishes instead of waiting
//! for the whole batch (the printed `runtime/streaming` line reports the
//! measured ratio of the two).

use criterion::{criterion_group, criterion_main, Criterion};
use qdm_core::pipeline::{run_pipeline, PipelineOptions};
use qdm_core::solver::SaSolver;
use qdm_problems::mqo::{MqoInstance, MqoProblem};
use qdm_runtime::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const N_JOBS: usize = 16;

fn workload() -> Vec<Arc<MqoProblem>> {
    (0..N_JOBS as u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            Arc::new(MqoProblem::new(MqoInstance::generate(8, 3, 0.35, &mut rng)))
        })
        .collect()
}

fn opts() -> PipelineOptions {
    PipelineOptions { repair: true, ..Default::default() }
}

/// Monotone seed source so every measured iteration is a cache miss.
static SEED: AtomicU64 = AtomicU64::new(1_000_000);

fn run_sequential(problems: &[Arc<MqoProblem>]) {
    let solver = SaSolver::default();
    let options = opts();
    for problem in problems {
        let seed = SEED.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(seed);
        std::hint::black_box(run_pipeline(problem.as_ref(), &solver, &options, &mut rng));
    }
}

fn run_pooled(service: &SolverService, problems: &[Arc<MqoProblem>]) {
    let options = opts();
    let batch: Vec<JobSpec> = problems
        .iter()
        .map(|p| {
            let seed = SEED.fetch_add(1, Ordering::Relaxed);
            JobSpec::new(Arc::clone(p) as SharedProblem, seed)
                .with_options(options)
                .on_backend("simulated-annealing")
        })
        .collect();
    let outcomes = service.run_batch(batch);
    assert!(outcomes.iter().all(|o| o.is_ok()));
}

fn bench_throughput(c: &mut Criterion) {
    let problems = workload();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let service = SolverService::new(ServiceConfig { workers, cache_capacity: 8 });

    let mut group = c.benchmark_group("runtime/throughput");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| run_sequential(&problems)));
    group.bench_function(format!("pool-{workers}-workers"), |b| {
        b.iter(|| run_pooled(&service, &problems));
    });
    group.finish();

    // Direct speedup measurement over a few full batches (criterion medians
    // are per-callable; this prints the headline ratio).
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        run_sequential(&problems);
    }
    let sequential = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..reps {
        run_pooled(&service, &problems);
    }
    let pooled = t1.elapsed().as_secs_f64();
    println!(
        "runtime/speedup: {:.2}x ({} jobs/batch, {} workers, seq {:.3}s vs pool {:.3}s)",
        sequential / pooled,
        N_JOBS,
        workers,
        sequential / reps as f64,
        pooled / reps as f64
    );
}

/// Per-result post-processing a streaming consumer can overlap with
/// solving: a pass over the decoded summary stands in for decode work.
fn postprocess(outcome: &JobOutcome) -> usize {
    let result = outcome.as_ref().expect("solvable");
    std::hint::black_box(result.report.decoded.summary.len() + result.report.bits.len())
}

fn run_streaming(service: &SolverService, problems: &[Arc<MqoProblem>]) {
    let options = opts();
    let session = service.session(SessionConfig { queue_capacity: N_JOBS, ..Default::default() });
    for problem in problems {
        let seed = SEED.fetch_add(1, Ordering::Relaxed);
        let spec = JobSpec::new(Arc::clone(problem) as SharedProblem, seed)
            .with_options(options)
            .on_backend("simulated-annealing");
        session.submit(spec);
    }
    // Post-process each completion as it lands, overlapping with the
    // still-running remainder of the batch.
    let mut consumed = 0;
    for completion in session.completions() {
        consumed += postprocess(&completion.outcome).min(1);
    }
    assert_eq!(consumed, N_JOBS);
}

fn run_batched(service: &SolverService, problems: &[Arc<MqoProblem>]) {
    let options = opts();
    let batch: Vec<JobSpec> = problems
        .iter()
        .map(|p| {
            let seed = SEED.fetch_add(1, Ordering::Relaxed);
            JobSpec::new(Arc::clone(p) as SharedProblem, seed)
                .with_options(options)
                .on_backend("simulated-annealing")
        })
        .collect();
    // The synchronous wrapper only hands results back once the whole batch
    // resolved; post-processing is serialized behind the slowest job.
    let outcomes = service.run_batch(batch);
    let consumed: usize = outcomes.iter().map(|o| postprocess(o).min(1)).sum();
    assert_eq!(consumed, N_JOBS);
}

fn bench_streaming_completions(c: &mut Criterion) {
    let problems = workload();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let service = SolverService::new(ServiceConfig { workers, cache_capacity: 8 });

    let mut group = c.benchmark_group("runtime/streaming");
    group.sample_size(10);
    group.bench_function("run_batch_then_decode", |b| b.iter(|| run_batched(&service, &problems)));
    group.bench_function("session_stream_decode", |b| {
        b.iter(|| run_streaming(&service, &problems));
    });
    group.finish();

    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        run_batched(&service, &problems);
    }
    let batched = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..reps {
        run_streaming(&service, &problems);
    }
    let streaming = t1.elapsed().as_secs_f64();
    println!(
        "runtime/streaming: {:.2}x ({} jobs/batch, {} workers, batch {:.3}s vs stream {:.3}s)",
        batched / streaming,
        N_JOBS,
        workers,
        batched / reps as f64,
        streaming / reps as f64
    );
}

fn bench_cache_hit_path(c: &mut Criterion) {
    let problems = workload();
    let service = SolverService::new(ServiceConfig { workers: 2, cache_capacity: 1024 });
    let options = opts();
    // Warm the cache once with a fixed seed, then measure pure hits.
    let batch: Vec<JobSpec> = problems
        .iter()
        .map(|p| JobSpec::new(Arc::clone(p) as SharedProblem, 42).with_options(options))
        .collect();
    let warm = service.run_batch(batch.clone());
    assert!(warm.iter().all(|o| o.is_ok()));

    let mut group = c.benchmark_group("runtime/cache");
    group.sample_size(10);
    group.bench_function("hit_batch", |b| {
        b.iter(|| {
            let outcomes = service.run_batch(batch.clone());
            assert!(outcomes.iter().all(|o| o.as_ref().is_ok_and(|r| r.from_cache)));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_streaming_completions, bench_cache_hit_path);
criterion_main!(benches);
