//! E7/E9/E10/E12/E13 — problem-encoding benchmarks: QUBO construction and
//! end-to-end pipelines for every Table I problem, against their classical
//! baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qdm_core::pipeline::{run_pipeline, PipelineOptions};
use qdm_core::solver::SaSolver;
use qdm_db::optimizer::{greedy_goo, optimal_bushy, optimal_left_deep};
use qdm_db::query::{GraphShape, QueryGraph};
use qdm_db::txn::random_workload;
use qdm_problems::joinorder::JoinOrderProblem;
use qdm_problems::mqo::{MqoInstance, MqoProblem};
use qdm_problems::schema::{generate_benchmark, SchemaMatchingProblem};
use qdm_problems::txn_schedule::TxnScheduleProblem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mqo(c: &mut Criterion) {
    let mut group = c.benchmark_group("mqo");
    group.sample_size(10);
    for queries in [4usize, 6, 8] {
        let mut rng = StdRng::seed_from_u64(queries as u64);
        let inst = MqoInstance::generate(queries, 3, 0.3, &mut rng);
        group.bench_with_input(BenchmarkId::new("exhaustive", queries), &inst, |b, inst| {
            b.iter(|| black_box(inst.exhaustive_optimum()))
        });
        let problem = MqoProblem::new(inst.clone());
        group.bench_with_input(BenchmarkId::new("qubo+sa_pipeline", queries), &problem, |b, p| {
            let mut rng = StdRng::seed_from_u64(9);
            let opts = PipelineOptions { repair: true, ..Default::default() };
            b.iter(|| black_box(run_pipeline(p, &SaSolver::default(), &opts, &mut rng)));
        });
    }
    group.finish();
}

fn bench_joinorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("joinorder");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let graph = QueryGraph::generate(GraphShape::Chain, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("dp_left_deep", n), &graph, |b, g| {
            b.iter(|| black_box(optimal_left_deep(g)))
        });
        group.bench_with_input(BenchmarkId::new("dp_bushy", n), &graph, |b, g| {
            b.iter(|| black_box(optimal_bushy(g)))
        });
        group.bench_with_input(BenchmarkId::new("goo", n), &graph, |b, g| {
            b.iter(|| black_box(greedy_goo(g)))
        });
    }
    // QUBO pipeline at a size the encoding handles comfortably.
    let mut rng = StdRng::seed_from_u64(5);
    let graph = QueryGraph::generate(GraphShape::Chain, 5, &mut rng);
    let problem = JoinOrderProblem::left_deep(graph);
    group.bench_function("qubo+sa_pipeline/5", |b| {
        let mut rng = StdRng::seed_from_u64(10);
        let opts = PipelineOptions { repair: true, ..Default::default() };
        b.iter(|| black_box(run_pipeline(&problem, &SaSolver::default(), &opts, &mut rng)));
    });
    group.finish();
}

fn bench_schema(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_matching");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let (inst, _) = generate_benchmark(n, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("exact_dp", n), &inst, |b, inst| {
            b.iter(|| black_box(inst.exact_matching()))
        });
        let problem = SchemaMatchingProblem::new(inst.clone());
        group.bench_with_input(BenchmarkId::new("qubo+sa_pipeline", n), &problem, |b, p| {
            let mut rng = StdRng::seed_from_u64(11);
            let opts = PipelineOptions { repair: true, ..Default::default() };
            b.iter(|| black_box(run_pipeline(p, &SaSolver::default(), &opts, &mut rng)));
        });
    }
    group.finish();
}

fn bench_txn(c: &mut Criterion) {
    let mut group = c.benchmark_group("txn_schedule");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let txns = random_workload(n, 3, 2, 0.6, &mut rng);
        let horizon = txns.iter().map(|t| t.duration).sum::<usize>();
        let problem = TxnScheduleProblem::new(txns, horizon);
        group.bench_with_input(BenchmarkId::new("qubo+sa_pipeline", n), &problem, |b, p| {
            let mut rng = StdRng::seed_from_u64(12);
            let opts = PipelineOptions { repair: true, ..Default::default() };
            b.iter(|| black_box(run_pipeline(p, &SaSolver::default(), &opts, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mqo, bench_joinorder, bench_schema, bench_txn);
criterion_main!(benches);
