//! `repro` — regenerates every table, figure and quantitative claim of the
//! paper. Run with no arguments for everything, or name experiments:
//!
//! ```text
//! cargo run -p qdm-bench --bin repro --release            # all, full scale
//! cargo run -p qdm-bench --bin repro --release -- --quick # all, quick
//! cargo run -p qdm-bench --bin repro --release -- e4 e5   # CHSH and GHZ
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();

    if ids.is_empty() {
        for report in qdm_bench::run_all(quick) {
            println!("{report}");
        }
        return;
    }
    for id in ids {
        match qdm_bench::run_one(id, quick) {
            Some(reports) => {
                for report in reports {
                    println!("{report}");
                }
            }
            None => eprintln!("unknown experiment '{id}' (try e1..e19)"),
        }
    }
}
