//! E6 — Sec. III-A: Grover's O(sqrt(N)) database search vs the classical
//! O(N) scan, measured in oracle queries over growing database sizes.

use crate::table::{fnum, Report};
use qdm_algos::grover::{optimal_iterations, success_probability};
use qdm_qdb::search::QuantumDatabase;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds a deterministic pseudo-random database of `2^n` records.
pub fn sample_database(n_qubits: usize, seed: u64) -> QuantumDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1usize << n_qubits;
    QuantumDatabase::from_values((0..n).map(|_| rng.random_range(0..1_000_000)).collect())
}

/// One row of the complexity sweep.
#[derive(Debug, Clone, Copy)]
pub struct GroverRow {
    /// Address width.
    pub n_qubits: usize,
    /// Database size.
    pub n_records: usize,
    /// Quantum oracle queries used (measured).
    pub quantum_queries: u64,
    /// Classical probes of the linear scan (measured).
    pub classical_probes: u64,
    /// Theoretical optimum `floor(pi/4 sqrt(N))`.
    pub theory: usize,
    /// Success probability at the optimal iteration count.
    pub success: f64,
}

/// Runs the sweep: one unique target per size, quantum vs classical.
pub fn grover_sweep(max_qubits: usize) -> Vec<GroverRow> {
    let mut rng = StdRng::seed_from_u64(6);
    let mut rows = Vec::new();
    for n_qubits in 3..=max_qubits {
        let db = sample_database(n_qubits, n_qubits as u64);
        let n = db.len();
        // Plant the target at a deterministic pseudo-random position.
        let target = (n * 7 / 11).min(n - 1);
        let qr = db.search_known(|r| r.id == target, 1, &mut rng);
        let cr = db.classical_search(|r| r.id == target);
        rows.push(GroverRow {
            n_qubits,
            n_records: n,
            quantum_queries: qr.quantum_queries,
            classical_probes: cr.classical_probes,
            theory: optimal_iterations(n, 1),
            success: success_probability(n, 1, optimal_iterations(n, 1)),
        });
    }
    rows
}

/// E6 report.
pub fn e06_grover(max_qubits: usize) -> Report {
    let rows = grover_sweep(max_qubits);
    let mut r = Report::new(
        "E6 — Grover database search: O(sqrt(N)) vs classical O(N) (Sec. III-A)",
        &[
            "N records",
            "quantum queries",
            "pi/4*sqrt(N) theory",
            "classical probes",
            "speedup",
            "P(success)",
        ],
    );
    for row in &rows {
        r.row(vec![
            row.n_records.to_string(),
            row.quantum_queries.to_string(),
            row.theory.to_string(),
            row.classical_probes.to_string(),
            format!("{:.1}x", row.classical_probes as f64 / row.quantum_queries.max(1) as f64),
            fnum(row.success),
        ]);
    }
    r.note("paper: 'classical algorithms require O(N) operations, while Grover's achieves this in O(sqrt(N))'");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_square_root_scaling() {
        let rows = grover_sweep(10);
        for row in &rows {
            // Quantum queries track pi/4 sqrt(N) exactly (known M = 1).
            assert_eq!(row.quantum_queries, row.theory as u64);
            assert!(row.success > 0.9, "success {}", row.success);
        }
        // Quadrupling N should roughly double quantum queries but
        // quadruple classical probes.
        let a = &rows[0]; // 8 records
        let b = rows.iter().find(|r| r.n_records == 32).expect("32-record row");
        let q_ratio = b.quantum_queries as f64 / a.quantum_queries as f64;
        assert!(q_ratio < 3.0, "quantum ratio {q_ratio}");
    }

    #[test]
    fn report_renders_all_rows() {
        let r = e06_grover(8);
        assert_eq!(r.rows.len(), 6);
    }
}
