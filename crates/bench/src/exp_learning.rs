//! E11 — join ordering by quantum machine learning (Winker et al. \[27\]):
//! the VQC Q-learning curve against random and optimal plans.

use crate::table::{fnum, Report};
use qdm_db::optimizer::{greedy_goo, optimal_left_deep};
use qdm_db::query::{GraphShape, QueryGraph};
use qdm_problems::vqc_join::{random_order_cost, VqcJoinAgent};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E11 report: learning-curve checkpoints for a chain query.
pub fn e11_vqc(n_relations: usize, episodes: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(1100);
    let graph = QueryGraph::generate(GraphShape::Chain, n_relations, &mut rng);
    let optimal = optimal_left_deep(&graph).cost;
    let goo = greedy_goo(&graph).cost;
    let mean_random: f64 =
        (0..100).map(|_| random_order_cost(&graph, &mut rng)).sum::<f64>() / 100.0;

    let mut agent = VqcJoinAgent::new(n_relations, 2, &mut rng);
    let untrained = agent.best_greedy_order(&graph).1;
    let stats = agent.train(&graph, episodes, &mut rng);
    let trained = agent.best_greedy_order(&graph).1;

    let mut r = Report::new(
        format!("E11 — VQC join ordering ([27]), {n_relations} relations, {episodes} episodes"),
        &["policy", "plan cost (C_out)", "vs optimal"],
    );
    let ratio = |c: f64| format!("{:.2}x", c / optimal.max(1e-12));
    r.row(vec!["random order (mean of 100)".into(), fnum(mean_random), ratio(mean_random)]);
    r.row(vec!["untrained VQC policy".into(), fnum(untrained), ratio(untrained)]);
    r.row(vec!["trained VQC policy".into(), fnum(trained), ratio(trained)]);
    r.row(vec!["greedy GOO baseline".into(), fnum(goo), ratio(goo)]);
    r.row(vec!["exact DP optimum".into(), fnum(optimal), "1.00x".into()]);
    // Learning-curve checkpoints.
    for checkpoint in [0, episodes / 2, episodes.saturating_sub(1)] {
        if let Some(s) = stats.get(checkpoint) {
            r.note(format!(
                "episode {:>3}: greedy-policy cost {} (TD err {})",
                s.episode,
                fnum(s.greedy_cost),
                fnum(s.td_error)
            ));
        }
    }
    r.note("shape ([27]): the learned policy beats random ordering and approaches classical heuristics");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_trained_beats_random() {
        let r = e11_vqc(4, 25);
        let random: f64 = r.rows[0][1].parse().expect("num");
        let trained: f64 = r.rows[2][1].parse().expect("num");
        let optimal: f64 = r.rows[4][1].parse().expect("num");
        assert!(trained <= random, "trained {trained} vs random {random}");
        assert!(trained >= optimal - 1e-9);
    }
}
