//! E7–E10, E13: the optimization experiments of Table I — MQO on the
//! (simulated) annealer, MQO via QAOA at growing depth, left-deep and
//! bushy join ordering, and transaction scheduling.

use crate::table::{fnum, Report};
use qdm_algos::qaoa::{qaoa_optimize, QaoaParams};
use qdm_core::pipeline::{run_pipeline, PipelineOptions};
use qdm_core::problem::DmProblem;
use qdm_core::solver::{QuboSolver, SaSolver, SqaSolver, TabuSolver};
use qdm_db::optimizer::{greedy_goo, optimal_bushy, optimal_left_deep};
use qdm_db::query::{GraphShape, QueryGraph};
use qdm_db::txn::{random_workload, serial_schedule};
use qdm_problems::joinorder::JoinOrderProblem;
use qdm_problems::mqo::{MqoInstance, MqoProblem};
use qdm_problems::txn_schedule::{grover_schedule_search, TxnScheduleProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// E7 — MQO on the simulated annealer vs classical baselines
/// (Trummer & Koch \[20\]). Reports solution quality and wall time across
/// instance sizes; the "speedup shape" is annealer time growing mildly
/// while exhaustive search explodes.
pub fn e07_mqo(sizes: &[(usize, usize)]) -> Report {
    let mut r = Report::new(
        "E7 — Multiple query optimization on the annealer ([20])",
        &[
            "queries x plans",
            "vars",
            "exhaustive obj",
            "exhaustive ms",
            "annealer obj",
            "annealer ms",
            "greedy obj",
            "feasible",
        ],
    );
    for &(queries, plans) in sizes {
        let mut rng = StdRng::seed_from_u64(700 + queries as u64);
        let inst = MqoInstance::generate(queries, plans, 0.3, &mut rng);
        let t0 = Instant::now();
        let (_, exhaustive) = inst.exhaustive_optimum();
        let exhaustive_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (_, greedy) = inst.greedy();
        let problem = MqoProblem::new(inst);
        let t1 = Instant::now();
        let report = run_pipeline(
            &problem,
            &SqaSolver::default(),
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        );
        let anneal_ms = t1.elapsed().as_secs_f64() * 1e3;
        r.row(vec![
            format!("{queries} x {plans}"),
            report.n_vars.to_string(),
            fnum(exhaustive),
            fnum(exhaustive_ms),
            fnum(report.decoded.objective),
            fnum(anneal_ms),
            fnum(greedy),
            report.decoded.feasible.to_string(),
        ]);
    }
    r.note("paper claim shape ([20]): annealing competitive with exact on the subset it fits, with time growing far slower than exhaustive search");
    r
}

/// E8 — MQO via QAOA (\[21\], \[22\]): approximation ratio and optimum-sampling
/// probability as functions of circuit depth `p`.
pub fn e08_qaoa_depth(depths: &[usize]) -> Report {
    let mut rng = StdRng::seed_from_u64(800);
    let inst = MqoInstance::generate(3, 3, 0.4, &mut rng);
    let problem = MqoProblem::new(inst);
    let qubo = problem.to_qubo();
    let mut r = Report::new(
        "E8 — MQO via QAOA: quality vs circuit depth ([21],[22])",
        &["depth p", "<H> expectation", "approx ratio", "P(optimum)", "best sampled feasible"],
    );
    for &p in depths {
        let mut qrng = StdRng::seed_from_u64(801);
        let res = qaoa_optimize(
            &qubo,
            &QaoaParams { depth: p, max_evals: 300 * (p as u64), ..Default::default() },
            &mut qrng,
        );
        let decoded = problem.decode(&res.solve.bits);
        r.row(vec![
            p.to_string(),
            fnum(res.expectation),
            fnum(res.approx_ratio),
            fnum(res.optimum_probability),
            decoded.feasible.to_string(),
        ]);
    }
    r.note("shape: approximation ratio and optimum probability improve (weakly) with p");
    r
}

/// E9 — left-deep join ordering via QUBO (\[23\]–\[25\]) across the four
/// canonical graph shapes, against the exact DP optimum.
pub fn e09_joinorder(n_relations: usize, solver: &dyn QuboSolver) -> Report {
    let mut r = Report::new(
        format!(
            "E9 — left-deep join ordering via QUBO on {} ({} relations)",
            solver.name(),
            n_relations
        ),
        &["graph", "vars", "DP optimal cost", "QUBO plan cost", "ratio", "feasible"],
    );
    for (name, shape) in [
        ("chain", GraphShape::Chain),
        ("star", GraphShape::Star),
        ("cycle", GraphShape::Cycle),
        ("clique", GraphShape::Clique),
    ] {
        let mut rng = StdRng::seed_from_u64(900);
        let graph = QueryGraph::generate(shape, n_relations, &mut rng);
        let dp = optimal_left_deep(&graph);
        let problem = JoinOrderProblem::left_deep(graph);
        let report = run_pipeline(
            &problem,
            solver,
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        );
        r.row(vec![
            name.into(),
            report.n_vars.to_string(),
            fnum(dp.cost),
            fnum(report.decoded.objective),
            format!("{:.2}", report.decoded.objective / dp.cost.max(1e-12)),
            report.decoded.feasible.to_string(),
        ]);
    }
    r.note("shape ([23],[24]): QUBO plans within a small factor of the DP optimum");
    r
}

/// E10 — bushy join trees (\[25\], \[26\]): balanced-template QUBO vs exact
/// left-deep and exact bushy DP.
pub fn e10_bushy(n_relations: usize) -> Report {
    let mut r = Report::new(
        "E10 — bushy join trees via QUBO ([25],[26])",
        &[
            "graph",
            "left-deep DP",
            "bushy DP",
            "bushy QUBO plan",
            "QUBO/bushy-DP",
            "bushy wins over left-deep",
        ],
    );
    for (name, shape) in
        [("chain", GraphShape::Chain), ("cycle", GraphShape::Cycle), ("clique", GraphShape::Clique)]
    {
        let mut rng = StdRng::seed_from_u64(1000);
        let graph = QueryGraph::generate(shape, n_relations, &mut rng);
        let ld = optimal_left_deep(&graph);
        let bushy = optimal_bushy(&graph);
        let goo = greedy_goo(&graph);
        let _ = goo;
        let problem = JoinOrderProblem::bushy(graph);
        let report = run_pipeline(
            &problem,
            &TabuSolver::default(),
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        );
        r.row(vec![
            name.into(),
            fnum(ld.cost),
            fnum(bushy.cost),
            fnum(report.decoded.objective),
            format!("{:.2}", report.decoded.objective / bushy.cost.max(1e-12)),
            (bushy.cost < ld.cost * 0.999).to_string(),
        ]);
    }
    r.note("shape ([26]): bushy >= left-deep never; QUBO recovers near-bushy-optimal trees within its template");
    r
}

/// E13 — transaction scheduling (\[29\]–\[31\]): QUBO schedules vs serial and
/// 2PL-greedy baselines, plus the Grover schedule search.
pub fn e13_txn(n_txns: usize, horizon: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(1300);
    let txns = random_workload(n_txns, 3, 2, 0.6, &mut rng);
    let serial = serial_schedule(&txns).makespan(&txns);
    // The horizon must at least admit the serial schedule.
    let horizon = horizon.max(serial);
    let problem = TxnScheduleProblem::new(txns.clone(), horizon);
    let mut r = Report::new(
        "E13 — 2PL transaction scheduling ([29]-[31])",
        &["method", "makespan", "feasible", "quantum queries"],
    );
    r.row(vec!["serial baseline".into(), serial.to_string(), "true".into(), "0".into()]);
    for solver in [
        Box::new(SaSolver::default()) as Box<dyn QuboSolver>,
        Box::new(SqaSolver::default()),
        Box::new(TabuSolver::default()),
    ] {
        let report = run_pipeline(
            &problem,
            solver.as_ref(),
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        );
        r.row(vec![
            format!("QUBO via {}", solver.name()),
            fnum(report.decoded.objective),
            report.decoded.feasible.to_string(),
            "-".into(),
        ]);
    }
    // Grover variant on a truncated instance that fits the register
    // (3 bits per transaction = an 8-slot horizon, enough for any feasible
    // schedule of 4 short transactions).
    let bits_per_txn = 3usize;
    let mut small: Vec<_> = txns.iter().take(4).cloned().collect();
    for (i, t) in small.iter_mut().enumerate() {
        t.id = i;
    }
    let g = grover_schedule_search(&small, bits_per_txn, &mut rng);
    r.row(vec![
        "Grover search ([31], first 4 txns)".into(),
        g.makespan.to_string(),
        g.schedule.is_conflict_free(&small).to_string(),
        g.quantum_queries.to_string(),
    ]);
    r.note("shape ([29],[30]): QUBO schedules avoid blocking and beat serial execution when parallelism exists");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdm_core::solver::SaSolver;

    #[test]
    fn e07_rows_are_feasible_and_bounded() {
        let r = e07_mqo(&[(3, 2), (4, 2)]);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert_eq!(row[7], "true");
            let exhaustive: f64 = row[2].parse().expect("num");
            let anneal: f64 = row[4].parse().expect("num");
            assert!(anneal >= exhaustive - 1e-6, "annealer beat exhaustive?!");
            assert!(anneal <= exhaustive * 1.5 + 10.0, "annealer too far off");
        }
    }

    #[test]
    fn e08_depths_render() {
        let r = e08_qaoa_depth(&[1, 2]);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            let ratio: f64 = row[2].parse().expect("num");
            assert!(ratio > 0.4 && ratio <= 1.0);
        }
    }

    #[test]
    fn e09_plans_are_feasible() {
        let r = e09_joinorder(4, &SaSolver::default());
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert_eq!(row[5], "true", "row {row:?}");
            let ratio: f64 = row[4].parse().expect("num");
            assert!((1.0 - 1e-9..100.0).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn e10_bushy_relationships_hold() {
        let r = e10_bushy(4);
        for row in &r.rows {
            let ld: f64 = row[1].parse().expect("num");
            let bushy: f64 = row[2].parse().expect("num");
            assert!(bushy <= ld + 1e-9);
        }
    }

    #[test]
    fn e13_schedules_beat_serial() {
        let r = e13_txn(5, 8);
        let serial: f64 = r.rows[0][1].parse().expect("num");
        let sa: f64 = r.rows[1][1].parse().expect("num");
        assert!(sa <= serial);
        assert_eq!(r.rows[1][2], "true");
    }
}
