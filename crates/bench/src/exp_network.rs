//! E14–E16: quantum-internet experiments — entanglement distribution vs
//! distance (Fig. 1c, refs \[5\],\[6\]), the no-cloning data model
//! (Sec. IV-B.1), and BB84 key distribution (\[62\]).

use crate::table::{fnum, Report};
use qdm_net::data::{QuantumRecord, QuantumTable};
use qdm_net::link::{fiber_satellite_crossover_km, LinkModel};
use qdm_net::qkd::{run_bb84, Bb84Params};
use qdm_net::repeater::RepeaterChain;
use qdm_net::teleport::{average_werner_fidelity, random_qubit, teleport};
use qdm_net::werner::WernerPair;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E14 — entanglement distribution: direct fiber vs repeater chain vs
/// satellite across distances, including the paper's 248 km and 1203 km
/// operating points.
pub fn e14_qnet(distances_km: &[f64]) -> Report {
    let mut r = Report::new(
        "E14 — entanglement distribution vs distance (Fig. 1c, [5],[6])",
        &[
            "distance km",
            "direct fiber pairs/s",
            "satellite pairs/s",
            "8-seg repeater pairs/s",
            "repeater fidelity",
        ],
    );
    for &d in distances_km {
        let fiber = LinkModel::fiber(d).pair_rate();
        let sat = LinkModel::satellite(d).pair_rate();
        let chain = RepeaterChain::with_segments(d, 8).performance();
        r.row(vec![fnum(d), fnum(fiber), fnum(sat), fnum(chain.rate_hz), fnum(chain.fidelity)]);
    }
    r.note(format!(
        "fiber/satellite crossover at ~{} km; paper's demonstrated points: 248 km fiber [5], 1203 km satellite [6]",
        fnum(fiber_satellite_crossover_km())
    ));
    r
}

/// E15 — the no-cloning data model: destructive reads, refused copies,
/// teleport-moves, and fidelity under noisy pairs.
pub fn e15_nocloning() -> Report {
    let mut rng = StdRng::seed_from_u64(1500);
    let mut r = Report::new(
        "E15 — no-cloning data structures (Sec. IV-B.1)",
        &["operation", "outcome", "detail"],
    );
    // Copy refusal.
    let record = QuantumRecord::from_classical(1, 2, 0b10);
    let refused = record.try_clone().is_err();
    r.row(vec![
        "copy a quantum record".into(),
        if refused { "refused (no-cloning)" } else { "BUG" }.into(),
        "compile-time: QuantumRecord is not Clone".into(),
    ]);
    // Ideal teleport move preserves the payload perfectly.
    let payload = random_qubit(&mut rng);
    let reference = payload.clone();
    let mut src = QuantumTable::new();
    let mut dst = QuantumTable::new();
    src.insert(QuantumRecord::new(7, payload)).expect("insert");
    let mut bank = vec![WernerPair::perfect()];
    let f = src.teleport_to(7, &mut dst, &mut bank, &mut rng).expect("teleport");
    r.row(vec![
        "teleport-move (perfect pair)".into(),
        format!("fidelity {}", fnum(f)),
        format!("source empty: {}, destination holds key 7: {}", src.is_empty(), dst.len() == 1),
    ]);
    let delivered = dst.take(7).expect("delivered");
    r.row(vec![
        "delivered state vs original".into(),
        fnum(delivered.debug_fidelity(&reference)),
        "teleportation is a MOVE: the original no longer exists".into(),
    ]);
    // Destructive read.
    let superposed = {
        let mut s = qdm_sim::state::StateVector::new(1);
        s.apply_single(0, &qdm_sim::gates::hadamard());
        QuantumRecord::new(9, s)
    };
    let (_, outcome) = superposed.read_destructive(&mut rng);
    r.row(vec![
        "destructive read of (|0>+|1>)/sqrt 2".into(),
        format!("collapsed to {outcome}"),
        "reading consumes the record (ownership moved)".into(),
    ]);
    // Noisy-pair teleport fidelity follows (2F+1)/3.
    for f_pair in [0.9, 0.7, 0.5] {
        let measured = average_werner_fidelity(WernerPair::new(f_pair), 800, &mut rng);
        r.row(vec![
            format!("teleport over Werner F={f_pair}"),
            format!("avg fidelity {}", fnum(measured)),
            format!("analytic (2F+1)/3 = {}", fnum((2.0 * f_pair + 1.0) / 3.0)),
        ]);
    }
    // Ideal circuit check.
    let p = random_qubit(&mut rng);
    let out = teleport(&p, &mut rng);
    r.row(vec![
        "exact 3-qubit teleport circuit".into(),
        fnum(out.delivered.fidelity(&p)),
        "Fig. 1c: 'data transmission through quantum teleportation'".into(),
    ]);
    r
}

/// E16 — BB84: QBER and key rates for honest, noisy and eavesdropped
/// channels.
pub fn e16_qkd(n_qubits: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(1600);
    let mut r = Report::new(
        "E16 — BB84 quantum key distribution ([62])",
        &["channel", "sifted bits", "QBER", "aborted", "secret fraction", "key bits"],
    );
    let scenarios: [(&str, Bb84Params); 4] = [
        ("honest, noiseless", Bb84Params { n_qubits, ..Default::default() }),
        (
            "honest, 3% depolarizing",
            Bb84Params { n_qubits, channel_flip: 0.03, ..Default::default() },
        ),
        (
            "intercept-resend eavesdropper",
            Bb84Params { n_qubits, eavesdropper: true, ..Default::default() },
        ),
        ("heavy noise (20%)", Bb84Params { n_qubits, channel_flip: 0.2, ..Default::default() }),
    ];
    for (name, params) in scenarios {
        let out = run_bb84(&params, &mut rng);
        r.row(vec![
            name.into(),
            out.sifted_bits.to_string(),
            fnum(out.qber),
            out.aborted.to_string(),
            fnum(out.secret_fraction),
            out.key.len().to_string(),
        ]);
    }
    r.note("eavesdropping induces ~25% QBER and is always detected; the 11% threshold gates key generation");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_repeater_dominates_at_long_distance() {
        let r = e14_qnet(&[100.0, 248.0, 600.0, 1203.0]);
        // At 600 km: repeater rate >> direct fiber rate.
        let row = &r.rows[2];
        let fiber: f64 = row[1].parse().expect("num");
        let chain: f64 = row[3].parse().expect("num");
        assert!(chain > fiber * 1e3);
    }

    #[test]
    fn e15_reports_refusal_and_perfect_moves() {
        let r = e15_nocloning();
        assert!(r.rows[0][1].contains("refused"));
        let fidelity: f64 = r.rows[2][1].parse().expect("num");
        assert!((fidelity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn e16_eavesdropper_row_aborts() {
        let r = e16_qkd(2048);
        assert_eq!(r.rows[0][3], "false");
        assert_eq!(r.rows[2][3], "true");
    }
}
