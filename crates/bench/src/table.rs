//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A formatted experiment report: a titled table plus free-form notes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id and title, e.g. `"E4 — CHSH game (Example IV.2)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (stringified by the producer).
    pub rows: Vec<Vec<String>>,
    /// Commentary lines printed under the table (paper-vs-measured notes).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; pads or truncates to the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}", w = w)).collect();
            writeln!(f, "| {} |", line.join(" | "))
        };
        print_row(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  {note}")?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 && x.abs() < 1e6 {
        format!("{x:.0}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("T", &["a", "bbbb"]);
        r.row(vec!["xxx".into(), "1".into()]).note("note line");
        let s = format!("{r}");
        assert!(s.contains("== T =="));
        assert!(s.contains("| xxx | 1    |"));
        assert!(s.contains("note line"));
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(0.8536), "0.8536");
        assert_eq!(fnum(1.23e8), "1.230e8");
        assert_eq!(fnum(2.0e-5), "2.000e-5");
    }
}
