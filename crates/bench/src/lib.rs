//! # qdm-bench — the experiment harness
//!
//! One module per experiment family; every table, figure and quantitative
//! claim of the paper maps to a function here returning a formatted
//! [`table::Report`] (see DESIGN.md's experiment index and EXPERIMENTS.md
//! for the paper-vs-measured record). The `repro` binary prints them all;
//! the Criterion benches in `benches/` time the underlying kernels.

#![warn(missing_docs)]

pub mod exp_examples;
pub mod exp_extensions;
pub mod exp_integration;
pub mod exp_learning;
pub mod exp_meta;
pub mod exp_network;
pub mod exp_optimization;
pub mod exp_search;
pub mod table;

use table::Report;

/// Runs every experiment at `quick` or full scale, in presentation order.
pub fn run_all(quick: bool) -> Vec<Report> {
    let mut out = Vec::new();
    out.push(exp_meta::e01_table_one());
    out.push(exp_meta::e02_fig2(if quick { 8 } else { 10 }));
    out.push(exp_examples::e03_superposition(if quick { 10_000 } else { 100_000 }));
    out.push(exp_examples::e04_chsh(if quick { 10_000 } else { 100_000 }));
    out.push(exp_examples::e05_ghz(if quick { 5_000 } else { 50_000 }));
    out.push(exp_search::e06_grover(if quick { 10 } else { 14 }));
    out.push(exp_optimization::e07_mqo(if quick {
        &[(3, 2), (4, 3), (5, 3)]
    } else {
        &[(3, 2), (4, 3), (5, 3), (6, 3), (7, 3)]
    }));
    out.push(exp_optimization::e08_qaoa_depth(if quick { &[1, 2, 3] } else { &[1, 2, 3, 4, 5] }));
    out.push(exp_optimization::e09_joinorder(
        if quick { 4 } else { 5 },
        &qdm_core::solver::SaSolver::default(),
    ));
    out.push(exp_optimization::e10_bushy(4));
    out.push(exp_learning::e11_vqc(4, if quick { 25 } else { 60 }));
    out.push(exp_integration::e12_schema(if quick {
        &[(4, 1), (5, 2)]
    } else {
        &[(4, 1), (6, 2), (8, 3)]
    }));
    out.push(exp_optimization::e13_txn(if quick { 5 } else { 6 }, 8));
    out.push(exp_network::e14_qnet(&[50.0, 100.0, 248.0, 400.0, 600.0, 1203.0]));
    out.push(exp_network::e15_nocloning());
    out.push(exp_network::e16_qkd(if quick { 2048 } else { 16_384 }));
    out.push(exp_meta::e17_device());
    out.push(exp_meta::e18_hybrid(3, 2));
    out.push(exp_meta::e19_penalty());
    out.push(exp_meta::e19_embedding());
    out.push(exp_extensions::e07b_physical_mqo(if quick {
        &[(3, 2), (3, 3)]
    } else {
        &[(3, 2), (3, 3), (4, 3)]
    }));
    out.push(exp_extensions::e20_counting(if quick { 10 } else { 12 }));
    out.push(exp_extensions::e21_e91(if quick { 4096 } else { 20_000 }));
    out
}

/// Looks up a single experiment by id (`"e4"`, `"E14"`, ...).
pub fn run_one(id: &str, quick: bool) -> Option<Vec<Report>> {
    let id = id.to_lowercase();
    let r = match id.as_str() {
        "e1" | "table1" => vec![exp_meta::e01_table_one()],
        "e2" | "fig2" => vec![exp_meta::e02_fig2(if quick { 8 } else { 10 })],
        "e3" | "superposition" => {
            vec![exp_examples::e03_superposition(if quick { 10_000 } else { 100_000 })]
        }
        "e4" | "chsh" => vec![exp_examples::e04_chsh(if quick { 10_000 } else { 100_000 })],
        "e5" | "ghz" => vec![exp_examples::e05_ghz(if quick { 5_000 } else { 50_000 })],
        "e6" | "grover" => vec![exp_search::e06_grover(if quick { 10 } else { 14 })],
        "e7" | "mqo" => vec![exp_optimization::e07_mqo(&[(3, 2), (4, 3), (5, 3)])],
        "e8" | "qaoa_depth" => vec![exp_optimization::e08_qaoa_depth(&[1, 2, 3])],
        "e9" | "joinorder" => {
            vec![exp_optimization::e09_joinorder(4, &qdm_core::solver::SaSolver::default())]
        }
        "e10" | "bushy" => vec![exp_optimization::e10_bushy(4)],
        "e11" | "vqc" => vec![exp_learning::e11_vqc(4, if quick { 25 } else { 60 })],
        "e12" | "schema" => vec![exp_integration::e12_schema(&[(4, 1), (5, 2)])],
        "e13" | "txn" => vec![exp_optimization::e13_txn(5, 8)],
        "e14" | "qnet" => {
            vec![exp_network::e14_qnet(&[50.0, 100.0, 248.0, 400.0, 600.0, 1203.0])]
        }
        "e15" | "nocloning" => vec![exp_network::e15_nocloning()],
        "e16" | "qkd" => vec![exp_network::e16_qkd(if quick { 2048 } else { 16_384 })],
        "e17" | "device" => vec![exp_meta::e17_device()],
        "e18" | "hybrid" => vec![exp_meta::e18_hybrid(3, 2)],
        "e19" | "constraints" => vec![exp_meta::e19_penalty(), exp_meta::e19_embedding()],
        "e7b" | "physical" => vec![exp_extensions::e07b_physical_mqo(&[(3, 2), (3, 3)])],
        "e20" | "counting" => vec![exp_extensions::e20_counting(if quick { 10 } else { 12 })],
        "e21" | "e91" => vec![exp_extensions::e21_e91(if quick { 4096 } else { 20_000 })],
        _ => return None,
    };
    Some(r)
}
