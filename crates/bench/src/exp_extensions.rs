//! E7b, E20, E21 — extension experiments beyond the paper's explicit
//! tables: the full *physical* annealer pipeline (logical QUBO → Chimera
//! chains → unembedding, the second half of \[20\]), quantum cardinality
//! estimation (Fig. 2's unused QPE box applied to a database problem, per
//! the Sec. III-C.1 "reformulation opportunities" direction), and E91
//! entanglement-based QKD (Sec. IV-B's nonlocality-as-security-foundation
//! claim as a running protocol).

use crate::table::{fnum, Report};
use qdm_anneal::embedding::ChimeraGraph;
use qdm_core::pipeline::{run_pipeline, run_pipeline_on_chimera, PipelineOptions};
use qdm_core::solver::ExactSolver;
use qdm_net::e91::{run_e91, E91Params};
use qdm_problems::mqo::{MqoInstance, MqoProblem};
use qdm_qdb::search::QuantumDatabase;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E7b — the *physical level* of Trummer & Koch \[20\]: MQO through minor
/// embedding onto the Chimera annealer, with chain telemetry, against the
/// logical-level exact solve.
pub fn e07b_physical_mqo(sizes: &[(usize, usize)]) -> Report {
    let mut r = Report::new(
        "E7b — MQO at the physical level: Chimera-embedded annealer ([20])",
        &[
            "queries x plans",
            "logical vars",
            "physical qubits",
            "max chain",
            "chain breaks",
            "embedded obj",
            "exact obj",
            "feasible",
        ],
    );
    for &(queries, plans) in sizes {
        let mut rng = StdRng::seed_from_u64(7100 + queries as u64);
        let inst = MqoInstance::generate(queries, plans, 0.3, &mut rng);
        let problem = MqoProblem::new(inst);
        let exact = run_pipeline(
            &problem,
            &ExactSolver,
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        );
        let graph = ChimeraGraph::new(8);
        let embedded = run_pipeline_on_chimera(
            &problem,
            &graph,
            &PipelineOptions { repair: true, ..Default::default() },
            &mut rng,
        )
        .expect("MQO instance embeds into C_8");
        r.row(vec![
            format!("{queries} x {plans}"),
            embedded.report.n_vars.to_string(),
            embedded.physical_qubits.to_string(),
            embedded.max_chain.to_string(),
            fnum(embedded.chain_break_rate),
            fnum(embedded.report.decoded.objective),
            fnum(exact.decoded.objective),
            embedded.report.decoded.feasible.to_string(),
        ]);
    }
    r.note("logical -> physical mapping reproduced end-to-end: chains, strengths, majority-vote unembedding");
    r
}

/// E20 — quantum cardinality estimation: quantum counting vs exact
/// classical counting for selectivity estimation.
pub fn e20_counting(n_qubits: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(2000);
    let n = 1usize << n_qubits;
    let db = QuantumDatabase::from_values((0..n).map(|v| (v as i64 * 31) % 100).collect());
    let mut r = Report::new(
        format!("E20 — quantum cardinality estimation (QPE x Grover), N = {n}"),
        &[
            "predicate",
            "true count",
            "estimated",
            "selectivity",
            "Grover applications",
            "classical probes",
        ],
    );
    for (name, modulo) in [("value < 10", 10i64), ("value < 25", 25), ("value < 50", 50)] {
        let truth = db.matching_ids(|rec| rec.fields[0] < modulo).len();
        let est = db.estimate_cardinality(|rec| rec.fields[0] < modulo, 7, 3, &mut rng);
        r.row(vec![
            name.into(),
            truth.to_string(),
            fnum(est.cardinality),
            fnum(est.selectivity),
            est.counting.grover_applications.to_string(),
            est.counting.classical_probes.to_string(),
        ]);
    }
    r.note("the Fig. 2 QPE box applied to a database task: for fixed relative precision the Grover-application count is independent of N, while the exact classical count scans all N records");
    r
}

/// E21 — E91: the CHSH value as an operational security test.
pub fn e21_e91(rounds: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(2100);
    let mut r = Report::new(
        "E21 — E91 entanglement-based QKD: nonlocality as the security foundation (Sec. IV-B)",
        &["channel", "CHSH S", "aborted", "key-round QBER", "key bits"],
    );
    let scenarios: [(&str, E91Params); 4] = [
        ("honest, perfect pairs", E91Params { rounds, ..Default::default() }),
        ("honest, Werner F=0.9", E91Params { rounds, pair_fidelity: 0.9, ..Default::default() }),
        (
            "intercept-resend eavesdropper",
            E91Params { rounds, eavesdropper: true, ..Default::default() },
        ),
        ("separable pairs (F=0.5)", E91Params { rounds, pair_fidelity: 0.5, ..Default::default() }),
    ];
    for (name, params) in scenarios {
        let out = run_e91(&params, &mut rng);
        r.row(vec![
            name.into(),
            fnum(out.chsh_s),
            out.aborted.to_string(),
            fnum(out.qber),
            out.key.len().to_string(),
        ]);
    }
    r.note("Eve keeps key rounds correlated (QBER ~ 0) yet cannot fake S > 2 — entanglement itself is the credential");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e07b_physical_pipeline_is_feasible_and_near_exact() {
        let r = e07b_physical_mqo(&[(3, 2), (3, 3)]);
        for row in &r.rows {
            assert_eq!(row[7], "true", "{row:?}");
            let embedded: f64 = row[5].parse().expect("num");
            let exact: f64 = row[6].parse().expect("num");
            assert!(embedded >= exact - 1e-6);
            assert!(embedded <= exact * 1.3 + 10.0, "embedded {embedded} vs exact {exact}");
            let phys: usize = row[2].parse().expect("num");
            let logical: usize = row[1].parse().expect("num");
            assert!(phys >= logical);
        }
    }

    #[test]
    fn e20_estimates_track_truth() {
        let r = e20_counting(8);
        for row in &r.rows {
            let truth: f64 = row[1].parse().expect("num");
            let est: f64 = row[2].parse().expect("num");
            assert!((est - truth).abs() <= truth.max(4.0) * 0.25, "{row:?}");
        }
    }

    #[test]
    fn e21_abort_pattern() {
        let r = e21_e91(4096);
        assert_eq!(r.rows[0][2], "false"); // honest: no abort
        assert_eq!(r.rows[2][2], "true"); // eavesdropper: abort
        assert_eq!(r.rows[3][2], "true"); // separable: abort
        let s_honest: f64 = r.rows[0][1].parse().expect("num");
        let s_eve: f64 = r.rows[2][1].parse().expect("num");
        assert!(s_honest > 2.0 && s_eve < 2.0);
    }
}
