//! E3–E5: the paper's worked quantitative examples — superposition
//! measurement (Example II.1), the CHSH game (Example IV.2) and the GHZ
//! game (Sec. IV-A).

use crate::table::{fnum, Report};
use qdm_net::nonlocal::{
    chsh_classical_optimum, chsh_quantum_value, chsh_sampled, ghz_classical_optimum,
    ghz_quantum_value, ghz_sampled, ChshStrategy,
};
use qdm_sim::gates;
use qdm_sim::state::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E3 — Example II.1: measuring `(|0> + |1>)/sqrt(2)` yields 0 and 1 with
/// 50% probability each.
pub fn e03_superposition(shots: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(3);
    let mut state = StateVector::new(1);
    state.apply_single(0, &gates::hadamard());
    let p0_exact = state.probability(0);
    let p1_exact = state.probability(1);
    let ones: usize = state.sample(shots, &mut rng).into_iter().sum();
    let mut r = Report::new(
        "E3 — Example II.1: superposition measurement statistics",
        &["outcome", "paper", "exact (sim)", &format!("sampled ({shots} shots)")],
    );
    r.row(vec![
        "0".into(),
        "0.5".into(),
        fnum(p0_exact),
        fnum((shots - ones) as f64 / shots as f64),
    ]);
    r.row(vec!["1".into(), "0.5".into(), fnum(p1_exact), fnum(ones as f64 / shots as f64)]);
    r.note("paper: 'an equal probability of 50% to get a 0 or 1'");
    r
}

/// E4 — Example IV.2: the CHSH game. Paper: quantum ~0.85, classical 0.75.
pub fn e04_chsh(rounds: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(4);
    let quantum_exact = chsh_quantum_value(&ChshStrategy::optimal());
    let quantum_sampled = chsh_sampled(&ChshStrategy::optimal(), rounds, &mut rng);
    let classical = chsh_classical_optimum();
    let mut r = Report::new(
        "E4 — Example IV.2: CHSH game winning probabilities",
        &["strategy", "paper", "measured"],
    );
    r.row(vec!["entangled (exact)".into(), "~0.85".into(), fnum(quantum_exact)]);
    r.row(vec![
        format!("entangled (sampled, {rounds} rounds)"),
        "~0.85".into(),
        fnum(quantum_sampled),
    ]);
    r.row(vec!["best classical".into(), "0.75".into(), fnum(classical)]);
    r.note(format!(
        "quantum advantage: {} > {} (Tsirelson cos^2(pi/8) = {})",
        fnum(quantum_exact),
        fnum(classical),
        fnum((std::f64::consts::FRAC_PI_8).cos().powi(2))
    ));
    r
}

/// E5 — the GHZ game. Paper: quantum 1.0, classical 0.75.
pub fn e05_ghz(rounds: usize) -> Report {
    let mut rng = StdRng::seed_from_u64(5);
    let quantum_exact = ghz_quantum_value();
    let quantum_sampled = ghz_sampled(rounds, &mut rng);
    let classical = ghz_classical_optimum();
    let mut r = Report::new(
        "E5 — GHZ game winning probabilities (Sec. IV-A)",
        &["strategy", "paper", "measured"],
    );
    r.row(vec!["entangled (exact)".into(), "1.0".into(), fnum(quantum_exact)]);
    r.row(vec![
        format!("entangled (sampled, {rounds} rounds)"),
        "1.0".into(),
        fnum(quantum_sampled),
    ]);
    r.row(vec!["best classical".into(), "0.75".into(), fnum(classical)]);
    r.note("paper: 'with entanglement, we can achieve a task that is not possible with classical resources'");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e03_reproduces_fifty_fifty() {
        let r = e03_superposition(20_000);
        // Sampled fraction within 2% of 0.5.
        let sampled: f64 = r.rows[1][3].parse().expect("numeric cell");
        assert!((sampled - 0.5).abs() < 0.02);
    }

    #[test]
    fn e04_reproduces_chsh_gap() {
        let r = e04_chsh(5_000);
        let quantum: f64 = r.rows[0][2].parse().expect("numeric");
        let classical: f64 = r.rows[2][2].parse().expect("numeric");
        assert!((quantum - 0.8536).abs() < 0.001);
        assert_eq!(classical, 0.75);
    }

    #[test]
    fn e05_reproduces_ghz_certainty() {
        let r = e05_ghz(2_000);
        let quantum: f64 = r.rows[0][2].parse().expect("numeric");
        let sampled: f64 = r.rows[1][2].parse().expect("numeric");
        assert_eq!(quantum, 1.0);
        assert_eq!(sampled, 1.0);
    }
}
