//! E12 — schema matching via QUBO (Fritsch & Scherzinger \[28\]): quality
//! against the exact matching and precision/recall against ground truth.

use crate::table::{fnum, Report};
use qdm_core::pipeline::{run_pipeline, PipelineOptions};
use qdm_core::solver::{QuboSolver, SaSolver, TabuSolver};
use qdm_problems::schema::{generate_benchmark, precision_recall, SchemaMatchingProblem};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E12 report across benchmark sizes.
pub fn e12_schema(sizes: &[(usize, usize)]) -> Report {
    let mut r = Report::new(
        "E12 — schema matching via QUBO ([28])",
        &["attrs + noise", "vars", "solver", "QUBO score", "exact score", "precision", "recall"],
    );
    for &(n_attrs, noise) in sizes {
        let mut rng = StdRng::seed_from_u64(1200 + n_attrs as u64);
        let (inst, truth) = generate_benchmark(n_attrs, noise, &mut rng);
        let (_, exact_score) = inst.exact_matching();
        let problem = SchemaMatchingProblem::new(inst);
        for solver in
            [Box::new(SaSolver::default()) as Box<dyn QuboSolver>, Box::new(TabuSolver::default())]
        {
            let report = run_pipeline(
                &problem,
                solver.as_ref(),
                &PipelineOptions { repair: true, ..Default::default() },
                &mut rng,
            );
            let matching =
                problem.matching(&report.bits).expect("repaired assignments are one-to-one");
            let (precision, recall) = precision_recall(&matching, &truth);
            r.row(vec![
                format!("{n_attrs} + {noise}"),
                report.n_vars.to_string(),
                solver.name().to_string(),
                fnum(-report.decoded.objective),
                fnum(exact_score),
                fnum(precision),
                fnum(recall),
            ]);
        }
    }
    r.note(
        "shape ([28]): QUBO matching tracks the exact matcher and recovers most ground-truth pairs",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quality_is_reasonable() {
        let r = e12_schema(&[(4, 1)]);
        for row in &r.rows {
            let qubo: f64 = row[3].parse().expect("num");
            let exact: f64 = row[4].parse().expect("num");
            assert!(qubo <= exact + 1e-9);
            assert!(qubo >= 0.5 * exact, "QUBO score {qubo} vs exact {exact}");
            let recall: f64 = row[6].parse().expect("num");
            assert!(recall >= 0.5);
        }
    }
}
