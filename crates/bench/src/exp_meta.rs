//! E1, E2, E17–E19: the "meta" experiments — Table I coverage, the Fig. 2
//! roadmap, device constraints, hybrid decomposition, and the
//! constraint-ablation studies of Sec. III-C.3.

use crate::table::{fnum, Report};
use qdm_anneal::embedding::{embed_ising, find_embedding_auto, unembed, ChimeraGraph};
use qdm_anneal::sa::{simulated_annealing, SaParams};
use qdm_core::device::{Device, Fit};
use qdm_core::pipeline::{run_pipeline, PipelineOptions};
use qdm_core::problem::DmProblem;
use qdm_core::roadmap::{table_one, Algorithm, Formulation};
use qdm_core::solver::{full_registry, ExactSolver, QaoaSolver, QuboSolver, SqaSolver, VqeSolver};
use qdm_db::optimizer::optimal_left_deep;
use qdm_db::query::{GraphShape, QueryGraph};
use qdm_db::txn::{random_workload, Transaction};
use qdm_problems::joinorder::JoinOrderProblem;
use qdm_problems::mqo::{MqoInstance, MqoProblem};
use qdm_problems::schema::{generate_benchmark, SchemaMatchingProblem};
use qdm_problems::txn_schedule::{grover_schedule_search, TxnScheduleProblem};
use qdm_problems::vqc_join::VqcJoinAgent;
use qdm_qubo::ising::IsingModel;
use qdm_qubo::model::QuboModel;
use qdm_qubo::penalty;
use qdm_qubo::solve::solve_exact;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random QUBO used by several meta experiments.
pub fn random_qubo(n: usize, seed: u64) -> QuboModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = QuboModel::new(n);
    for i in 0..n {
        q.add_linear(i, rng.random_range(-2.0..2.0));
        for j in (i + 1)..n {
            if rng.random::<f64>() < 0.5 {
                q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
            }
        }
    }
    q
}

/// The perf-acceptance instance both solver and runtime benches measure
/// against: 256 variables at 5% coupling density, fixed seed. One
/// definition so `BENCH_solvers.json` and `BENCH_runtime.json` are always
/// numbers about the *same* model.
pub fn dense_acceptance_instance() -> QuboModel {
    let mut rng = StdRng::seed_from_u64(256);
    let mut q = QuboModel::new(256);
    for i in 0..256 {
        q.add_linear(i, rng.random_range(-3.0..3.0));
        for j in (i + 1)..256 {
            if rng.random::<f64>() < 0.05 {
                q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
            }
        }
    }
    q
}

/// E1 — Table I coverage: every surveyed (problem, formulation, algorithm,
/// machine) row runs end-to-end in this workspace and yields a feasible
/// solution.
pub fn e01_table_one() -> Report {
    let mut r = Report::new(
        "E1 — Table I coverage: every surveyed pipeline runs end-to-end",
        &["reference", "subproblem", "formulation", "route", "vars", "feasible", "objective"],
    );
    let opts = PipelineOptions { repair: true, ..Default::default() };
    for row in table_one() {
        let mut rng = StdRng::seed_from_u64(100);
        // Pick a representative instance + solver per row.
        let outcomes: Vec<(String, usize, bool, f64)> = match (row.subproblem, row.formulation) {
            (qdm_core::roadmap::SubProblem::Mqo, _) => {
                let inst = MqoInstance::generate(3, 3, 0.3, &mut rng);
                let p = MqoProblem::new(inst);
                let solver: Box<dyn QuboSolver> = if row.algorithms.contains(&Algorithm::Qaoa) {
                    Box::new(QaoaSolver::default())
                } else {
                    Box::new(SqaSolver::default())
                };
                let rep = run_pipeline(&p, solver.as_ref(), &opts, &mut rng);
                vec![(
                    solver.name().to_string(),
                    rep.n_vars,
                    rep.decoded.feasible,
                    rep.decoded.objective,
                )]
            }
            (qdm_core::roadmap::SubProblem::JoinOrdering, Formulation::Qubo) => {
                let graph = QueryGraph::generate(GraphShape::Chain, 3, &mut rng);
                let p = if row.algorithms.contains(&Algorithm::Vqe) {
                    JoinOrderProblem::bushy(graph)
                } else {
                    JoinOrderProblem::left_deep(graph)
                };
                row.algorithms
                    .iter()
                    .map(|alg| {
                        let solver: Box<dyn QuboSolver> = match alg {
                            Algorithm::Vqe => Box::new(VqeSolver::default()),
                            Algorithm::Qaoa => Box::new(QaoaSolver::default()),
                            _ => Box::new(SqaSolver::default()),
                        };
                        let rep = run_pipeline(&p, solver.as_ref(), &opts, &mut rng);
                        (
                            solver.name().to_string(),
                            rep.n_vars,
                            rep.decoded.feasible,
                            rep.decoded.objective,
                        )
                    })
                    .collect()
            }
            (qdm_core::roadmap::SubProblem::JoinOrdering, Formulation::LearnedPolicy) => {
                let graph = QueryGraph::generate(GraphShape::Chain, 4, &mut rng);
                let mut agent = VqcJoinAgent::new(4, 2, &mut rng);
                agent.train(&graph, 10, &mut rng);
                let (order, cost) = agent.best_greedy_order(&graph);
                vec![("vqc-q-learning".to_string(), 4, order.len() == 4, cost)]
            }
            (qdm_core::roadmap::SubProblem::SchemaMatching, _) => {
                let (inst, _) = generate_benchmark(3, 0, &mut rng);
                let p = SchemaMatchingProblem::new(inst);
                let solver = QaoaSolver::default();
                let rep = run_pipeline(&p, &solver, &opts, &mut rng);
                vec![("qaoa".to_string(), rep.n_vars, rep.decoded.feasible, rep.decoded.objective)]
            }
            (qdm_core::roadmap::SubProblem::TwoPhaseLocking, _) => {
                let txns: Vec<Transaction> = random_workload(3, 3, 2, 0.6, &mut rng);
                // A horizon of the serial makespan always admits a feasible
                // (worst case: serial) schedule.
                let horizon = txns.iter().map(|t| t.duration).sum::<usize>();
                let p = TxnScheduleProblem::new(txns.clone(), horizon);
                let rep = run_pipeline(&p, &SqaSolver::default(), &opts, &mut rng);
                let mut out = vec![(
                    "simulated-quantum-annealing".to_string(),
                    rep.n_vars,
                    rep.decoded.feasible,
                    rep.decoded.objective,
                )];
                if row.algorithms.contains(&Algorithm::Grover) {
                    let g = grover_schedule_search(&txns, 2, &mut rng);
                    out.push((
                        "grover-minimum".to_string(),
                        txns.len() * 2,
                        g.schedule.is_conflict_free(&txns),
                        g.makespan as f64,
                    ));
                }
                out
            }
        };
        for (route, vars, feasible, objective) in outcomes {
            r.row(vec![
                row.reference.to_string(),
                format!("{:?}", row.subproblem),
                format!("{:?}", row.formulation),
                route,
                vars.to_string(),
                feasible.to_string(),
                fnum(objective),
            ]);
        }
    }
    r.note("every Table I row is reproduced by a working pipeline in this workspace");
    r
}

/// E2 — Fig. 2 roadmap: the same QUBO routed through every solver path.
pub fn e02_fig2(n_vars: usize) -> Report {
    let q = random_qubo(n_vars, 200);
    let exact = solve_exact(&q);
    let mut r = Report::new(
        format!("E2 — Fig. 2 roadmap: one QUBO ({n_vars} vars), every route"),
        &["solver", "branch", "energy", "gap to optimum", "evaluations"],
    );
    for solver in full_registry() {
        let mut rng = StdRng::seed_from_u64(201);
        let res = solver.solve(&q, &mut rng);
        r.row(vec![
            solver.name().to_string(),
            format!("{:?}", solver.kind()),
            fnum(res.energy),
            fnum(res.energy - exact.energy),
            res.evaluations.to_string(),
        ]);
    }
    r.note("paper Fig. 2: 'data management problem -> QUBO -> {annealer | QAOA/VQE/Grover on gate-based}'");
    r
}

/// E17 — device constraints (Fig. 1b, Sec. III-C.3): which devices fit
/// which problem sizes, and what embedding costs.
pub fn e17_device() -> Report {
    let devices = [Device::five_qubit_chip(), Device::ideal_simulator(20), Device::dwave_2x()];
    let mut r = Report::new(
        "E17 — device constraints: problem fit across hardware profiles",
        &["device", "MQO size", "logical vars", "fit", "physical qubits", "max chain"],
    );
    for device in &devices {
        for (queries, plans) in [(2usize, 2usize), (3, 3), (6, 4)] {
            let mut rng = StdRng::seed_from_u64(1700);
            let inst = MqoInstance::generate(queries, plans, 0.3, &mut rng);
            let p = MqoProblem::new(inst);
            let qubo = p.to_qubo();
            let fit = device.fit(&qubo);
            let (fit_s, phys, chain) = match fit {
                Fit::Direct => ("direct".to_string(), qubo.n_vars(), 1),
                Fit::Embedded { physical_qubits, max_chain } => {
                    ("embedded".to_string(), physical_qubits, max_chain)
                }
                Fit::TooLarge { required, available } => {
                    (format!("too large ({required}>{available})"), 0, 0)
                }
            };
            r.row(vec![
                device.name.clone(),
                format!("{queries}x{plans}"),
                qubo.n_vars().to_string(),
                fit_s,
                phys.to_string(),
                chain.to_string(),
            ]);
        }
    }
    r.note("the 5-qubit chip of Fig. 1b fits almost nothing — the paper's 'restricted number of qubits' constraint");
    r
}

/// E18 — the hybrid decomposition of Sec. III-C.2: clustered MQO with and
/// without connected-component decomposition.
pub fn e18_hybrid(clusters: usize, queries_per_cluster: usize) -> Report {
    // Build a block-structured MQO instance: savings only within clusters.
    let mut rng = StdRng::seed_from_u64(1800);
    let plans_per_query = 2;
    let n_queries = clusters * queries_per_cluster;
    let mut inst = MqoInstance::generate(n_queries, plans_per_query, 0.0, &mut rng);
    for c in 0..clusters {
        let lo = c * queries_per_cluster;
        for q1 in lo..lo + queries_per_cluster {
            for q2 in (q1 + 1)..lo + queries_per_cluster {
                for p1 in inst.plans_of(q1) {
                    for p2 in inst.plans_of(q2) {
                        if rng.random::<f64>() < 0.5 {
                            let cap = inst.plan_cost[p1].min(inst.plan_cost[p2]);
                            inst.savings.push((p1, p2, 0.3 * cap));
                        }
                    }
                }
            }
        }
    }
    let problem = MqoProblem::new(inst);
    let mut r = Report::new(
        "E18 — hybrid decomposition (Sec. III-C.2): query clustering shrinks the quantum job",
        &["mode", "components", "largest sub-QUBO (qubits)", "objective", "feasible"],
    );
    for (name, decompose) in [("monolithic", false), ("decomposed", true)] {
        let mut prng = StdRng::seed_from_u64(1801);
        let report = run_pipeline(
            &problem,
            &ExactSolver,
            &PipelineOptions { decompose, repair: true, ..Default::default() },
            &mut prng,
        );
        r.row(vec![
            name.into(),
            report.components.to_string(),
            report.max_subproblem_vars.to_string(),
            fnum(report.decoded.objective),
            report.decoded.feasible.to_string(),
        ]);
    }
    r.note("same optimum, far fewer qubits per quantum call — exactly the [20] preprocessing step");
    r
}

/// E19a — penalty-weight ablation (Sec. III-C.3 accuracy/feasibility
/// trade-off): MQO feasibility rate vs penalty multiplier under SA.
pub fn e19_penalty() -> Report {
    let mut r = Report::new(
        "E19a — penalty-weight ablation: feasibility vs multiplier",
        &["penalty multiplier", "feasible runs /10", "mean objective of feasible"],
    );
    for mult in [0.05, 0.2, 1.0, 4.0] {
        let mut feasible = 0;
        let mut obj_sum = 0.0;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(1900 + seed);
            let inst = MqoInstance::generate(4, 3, 0.3, &mut rng);
            let mut p = MqoProblem::new(inst);
            p.penalty_weight *= mult;
            let res = simulated_annealing(
                &p.to_qubo(),
                &SaParams { restarts: 1, sweeps: 60, ..SaParams::scaled_to(&p.to_qubo()) },
                &mut rng,
            );
            let d = p.decode(&res.bits);
            if d.feasible {
                feasible += 1;
                obj_sum += d.objective;
            }
        }
        r.row(vec![
            fnum(mult),
            feasible.to_string(),
            if feasible > 0 { fnum(obj_sum / feasible as f64) } else { "-".into() },
        ]);
    }
    r.note("too-small penalties yield infeasible (constraint-violating) low-energy states");
    r
}

/// E19b — embedding ablation: chain-strength multiplier vs chain breaks
/// and logical solution quality on the Chimera graph.
pub fn e19_embedding() -> Report {
    let q = {
        let mut q = QuboModel::new(6);
        let mut rng = StdRng::seed_from_u64(1950);
        for i in 0..6 {
            q.add_linear(i, rng.random_range(-2.0..2.0));
            for j in (i + 1)..6 {
                q.add_quadratic(i, j, rng.random_range(-2.0..2.0));
            }
        }
        q
    };
    let exact = solve_exact(&q);
    let logical = IsingModel::from_qubo(&q);
    let graph = ChimeraGraph::new(4);
    let mut adjacency = vec![Vec::new(); q.n_vars()];
    for ((i, j), _) in q.quadratic_iter() {
        adjacency[i].push(j);
        adjacency[j].push(i);
    }
    let embedding = find_embedding_auto(&adjacency, &graph).expect("K6 fits C4");
    let base_strength = qdm_anneal::embedding::chain_strength(&logical);

    let mut r = Report::new(
        "E19b — chain-strength ablation on Chimera (physical mapping of [20])",
        &["strength multiplier", "mean chain-break rate", "mean logical gap", "optimum hit /8"],
    );
    for mult in [0.05, 0.25, 1.0, 3.0] {
        let physical = embed_ising(&logical, &embedding, &graph, base_strength * mult);
        let physical_qubo = physical.to_qubo();
        let mut breaks = 0.0;
        let mut gap = 0.0;
        let mut hits = 0;
        let runs = 8;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(1960 + seed);
            let res = simulated_annealing(
                &physical_qubo,
                &SaParams { restarts: 1, sweeps: 120, ..SaParams::scaled_to(&physical_qubo) },
                &mut rng,
            );
            let spins: Vec<bool> = res.bits.iter().map(|&b| !b).collect();
            let (logical_spins, stats) = unembed(&spins, &embedding);
            let bits = IsingModel::bits_from_spins(&logical_spins);
            breaks += stats.break_rate();
            let e = q.energy(&bits);
            gap += e - exact.energy;
            if (e - exact.energy).abs() < 1e-9 {
                hits += 1;
            }
        }
        r.row(vec![
            fnum(mult),
            fnum(breaks / runs as f64),
            fnum(gap / runs as f64),
            hits.to_string(),
        ]);
    }
    r.note("weak chains break (majority vote loses information); strong chains wash out the logical problem — the classic sweet-spot curve");
    r
}

/// E9-adjacent sanity helper used by integration tests: the DP optimum for
/// the standard seeded chain.
pub fn reference_chain_optimum(n: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(900);
    let graph = QueryGraph::generate(GraphShape::Chain, n, &mut rng);
    optimal_left_deep(&graph).cost
}

/// Penalty helper re-export check (keeps the penalty module exercised from
/// the bench crate, mirroring downstream use).
pub fn one_hot_energy_probe() -> f64 {
    let mut q = QuboModel::new(3);
    penalty::exactly_one(&mut q, &[0, 1, 2], 7.0);
    q.energy(&[true, true, false])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_every_row_is_feasible() {
        let r = e01_table_one();
        assert!(r.rows.len() >= 7, "at least one outcome per Table I row");
        for row in &r.rows {
            assert_eq!(row[5], "true", "row not feasible: {row:?}");
        }
    }

    #[test]
    fn e02_all_solvers_report_and_none_beats_exact() {
        let r = e02_fig2(8);
        assert_eq!(r.rows.len(), qdm_core::solver::full_registry().len());
        let exact_gap: f64 = r.rows[0][3].parse().expect("num");
        assert_eq!(exact_gap, 0.0);
        for row in &r.rows {
            let gap: f64 = row[3].parse().expect("num");
            assert!(gap >= -1e-9, "{} beat exact", row[0]);
        }
    }

    #[test]
    fn e17_five_qubit_chip_rejects_real_workloads() {
        let r = e17_device();
        let chip_rows: Vec<_> = r.rows.iter().filter(|row| row[0].contains("5-qubit")).collect();
        assert!(chip_rows.iter().any(|row| row[3].starts_with("too large")));
    }

    #[test]
    fn e18_decomposition_shrinks_subproblems() {
        let r = e18_hybrid(3, 2);
        let mono: usize = r.rows[0][2].parse().expect("num");
        let deco: usize = r.rows[1][2].parse().expect("num");
        assert!(deco < mono, "decomposed {deco} !< monolithic {mono}");
        assert_eq!(r.rows[0][3], r.rows[1][3], "objectives must agree");
    }

    #[test]
    fn e19_penalty_extremes_behave() {
        let r = e19_penalty();
        let weak: usize = r.rows[0][1].parse().expect("num");
        let strong: usize = r.rows[3][1].parse().expect("num");
        assert!(strong >= weak, "stronger penalties can't be less feasible");
        assert!(strong >= 8, "heuristic-strength penalties should mostly be feasible");
    }

    #[test]
    fn one_hot_probe_positive() {
        assert!(one_hot_energy_probe() > 0.0);
    }
}
